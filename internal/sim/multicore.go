package sim

import (
	"fmt"

	"pmp/internal/cache"
	"pmp/internal/cpu"
	"pmp/internal/dram"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/tlb"
	"pmp/internal/trace"
)

// Multicore simulates N cores, each with a private L1D/L2 hierarchy and
// prefetcher, sharing an inclusive LLC and the DRAM channels — the
// paper's 4-core configuration (Table IV: 8GB, 2 channels).
type Multicore struct {
	cfg   Config
	llc   *cache.Cache
	mem   *dram.DRAM
	cores []*System
}

// NewMulticore builds an n-core system; prefetchers supplies one
// prefetcher per core. It panics on invalid configuration.
func NewMulticore(cfg Config, prefetchers []prefetch.Prefetcher) *Multicore {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(prefetchers) == 0 {
		panic("sim: multicore needs at least one prefetcher")
	}
	m := &Multicore{
		cfg: cfg,
		llc: cache.New(cfg.LLC),
		mem: dram.New(cfg.DRAM),
	}
	for i, pf := range prefetchers {
		s := &System{
			cfg:       cfg,
			core:      cpu.New(cfg.Core),
			l1d:       cache.New(cfg.L1D),
			l2c:       cache.New(cfg.L2C),
			llc:       m.llc,
			mem:       m.mem,
			dtlb:      tlb.New(cfg.TLB),
			pf:        pf,
			coreIndex: uint64(i),
		}
		s.backInv = m.broadcastInvalidate
		s.wireFeedback()
		s.pq1 = newPQTracker(cfg.L1D.PQSize)
		s.pq2 = newPQTracker(cfg.L2C.PQSize)
		s.pqL = newPQTracker(cfg.LLC.PQSize)
		s.initScratch()
		m.cores = append(m.cores, s)
	}
	return m
}

// broadcastInvalidate back-invalidates a line from every core's private
// levels (shared inclusive LLC).
func (m *Multicore) broadcastInvalidate(line mem.Addr) {
	for _, s := range m.cores {
		s.invalidateUpper(line)
	}
}

// EnableLifecycleTracing turns on per-request prefetch lifecycle
// tracking on every core (see System.EnableLifecycleTracing). The
// shared LLC fans its lifecycle events out to every core's tracker;
// each tracker resolves only the requests it issued, so per-core
// snapshots stay attributable. When two cores race a prefetch for the
// same LLC line, both lifecycles resolve on the same event — a small
// over-count that keeps the trackers independent. The optional sink is
// shared by all cores.
func (m *Multicore) EnableLifecycleTracing(sink func(LifecycleEvent)) {
	hooks := make([]func(cache.PrefetchEvent), len(m.cores))
	for i, s := range m.cores {
		s.EnableLifecycleTracing(sink)
		hooks[i] = s.lt.cacheHook(prefetch.LevelLLC)
	}
	m.llc.PrefetchTrace = func(ev cache.PrefetchEvent) {
		for _, h := range hooks {
			h(ev)
		}
	}
}

// LifecycleSnapshots returns each core's per-prefetcher lifecycle
// aggregates (nil when tracing is off); AggregateLifecycle sums them.
func (m *Multicore) LifecycleSnapshots() [][]LifecycleSnapshot {
	if len(m.cores) == 0 || m.cores[0].lt == nil {
		return nil
	}
	out := make([][]LifecycleSnapshot, len(m.cores))
	for i, s := range m.cores {
		out[i] = s.LifecycleSnapshots()
	}
	return out
}

type coreState struct {
	src        trace.Source
	warm       bool
	finished   bool
	startCycle uint64
	startInstr uint64
	wraps      int
}

// Run replays one trace per core, interleaved by simulated time (the
// core furthest behind in cycles steps next), and returns per-core
// results. Traces that end before a core finishes its measurement
// window are replayed from the start, as ChampSim does for
// multi-programmed mixes. cfg.Measure must be > 0.
func (m *Multicore) Run(traces []trace.Source) []Result {
	if len(traces) != len(m.cores) {
		panic(fmt.Sprintf("sim: %d traces for %d cores", len(traces), len(m.cores)))
	}
	if m.cfg.Measure == 0 {
		panic("sim: multicore runs need cfg.Measure > 0")
	}
	states := make([]coreState, len(m.cores))
	for i, src := range traces {
		src.Reset()
		states[i] = coreState{src: src}
		m.cores[i].enableStats(false)
	}
	warmed := 0

	for {
		// Step the laggard unfinished core to keep simulated time aligned.
		idx := -1
		var minCycle uint64
		for i, st := range states {
			if st.finished {
				continue
			}
			c := m.cores[i].core.Cycle()
			if idx == -1 || c < minCycle {
				idx, minCycle = i, c
			}
		}
		if idx == -1 {
			break
		}
		s, st := m.cores[idx], &states[idx]

		r, ok := st.src.Next()
		if !ok {
			st.src.Reset()
			st.wraps++
			if r, ok = st.src.Next(); !ok || st.wraps > 1000 {
				st.finished = true
				continue
			}
		}
		if !st.warm && s.core.Dispatched() >= m.cfg.Warmup {
			st.warm = true
			// Private structures reset per core; the shared LLC and DRAM
			// reset once, when the last core leaves warm-up.
			s.l1d.ResetStats()
			s.l2c.ResetStats()
			s.dtlb.ResetStats()
			s.pfStats = PrefetchIssueStats{}
			if s.lt != nil {
				s.lt.reset()
			}
			s.statsOn = true
			s.l1d.EnableStats(true)
			s.l2c.EnableStats(true)
			s.dtlb.EnableStats(true)
			st.startCycle = s.core.Cycle()
			st.startInstr = s.core.Dispatched()
			warmed++
			if warmed == len(m.cores) {
				m.llc.EnableStats(true)
				m.mem.EnableStats(true)
				m.llc.ResetStats()
				m.mem.ResetStats()
			}
		}
		if st.warm && s.core.Dispatched()-st.startInstr >= m.cfg.Measure {
			st.finished = true
			continue
		}
		s.step(r)
	}

	results := make([]Result, len(m.cores))
	for i, s := range m.cores {
		st := states[i]
		end := s.core.Drain()
		var cycles uint64
		if end >= st.startCycle {
			cycles = end - st.startCycle
		}
		var lifecycle []LifecycleSnapshot
		if s.lt != nil {
			s.lt.flushOpen()
			lifecycle = s.lt.snapshots()
		}
		results[i] = Result{
			Trace:        st.src.Name(),
			Prefetcher:   s.pf.Name(),
			Instructions: s.core.Dispatched() - st.startInstr,
			Cycles:       cycles,
			L1D:          s.l1d.Stats(),
			L2C:          s.l2c.Stats(),
			// The LLC and DRAM are shared: their stats describe the
			// whole mix and repeat in every per-core result.
			LLC:       m.llc.Stats(),
			DRAM:      m.mem.Stats(),
			TLB:       s.dtlb.Stats(),
			PF:        s.pfStats,
			Lifecycle: lifecycle,
		}
	}
	return results
}
