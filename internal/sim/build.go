package sim

import "pmp/internal/prefetch"

// HierarchyDepth returns the number of cache levels the configuration
// resolves to (explicit Levels, or the classic 3-level fallback).
// Run-spec validation uses it to bound placement levels without
// constructing a machine.
func (c Config) HierarchyDepth() int { return len(c.hierarchy()) }

// AttachSpec places an extra prefetcher at one cache level of every
// core: Level indexes the hierarchy (1 = the level below L1D,
// HierarchyDepth-1 = the outermost), and New constructs a fresh
// instance per core — attached prefetchers hold state and must never
// be shared between cores.
type AttachSpec struct {
	Level int
	New   func() prefetch.Prefetcher
}

// NewMachineAt builds a Machine with one trained (level-0) prefetcher
// per core plus the given per-level attachments, and sets the
// trace-replay mode. It is the single spec→Machine construction path:
// serial runs, the local pool, and remote workers all materialize
// run specs through it, so a run is assembled identically no matter
// which scheduler executes it.
func NewMachineAt(cfg Config, trained []prefetch.Prefetcher, attach []AttachSpec, replay bool) *Machine {
	m := NewMachine(cfg, trained)
	for _, a := range attach {
		for i := 0; i < m.NumCores(); i++ {
			m.Core(i).AttachPrefetcher(a.Level, a.New())
		}
	}
	m.SetTraceReplay(replay)
	return m
}
