package sim

import (
	"pmp/internal/cache"
	"pmp/internal/cpu"
	"pmp/internal/dram"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/tlb"
	"pmp/internal/trace"
)

// PrefetchIssueStats counts prefetcher activity at the system level.
type PrefetchIssueStats struct {
	Issued     [4]uint64 // indexed by prefetch.Level
	DroppedPQ  uint64    // request dropped: duplicate or filtered
	DroppedMSH uint64    // request dropped: no prefetch MSHR available
}

// Total returns the total issued prefetches across levels.
func (p PrefetchIssueStats) Total() uint64 {
	return p.Issued[prefetch.LevelL1] + p.Issued[prefetch.LevelL2] + p.Issued[prefetch.LevelLLC]
}

// Result summarizes one measured simulation.
type Result struct {
	Trace      string
	Prefetcher string

	Instructions uint64
	Cycles       uint64

	L1D  cache.Stats
	L2C  cache.Stats
	LLC  cache.Stats
	DRAM dram.Stats
	TLB  tlb.Stats
	PF   PrefetchIssueStats

	// Lifecycle holds one snapshot per prefetcher (the L1D-trained
	// prefetcher, plus the LLC-attached one when present). Nil unless
	// lifecycle tracing was enabled before Run.
	Lifecycle []LifecycleSnapshot
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MPKI returns LLC demand misses per kilo-instruction (the paper's
// workload classification metric).
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.LLC.DemandMisses) / float64(r.Instructions) * 1000
}

// System is a single-core simulated machine. Construct with NewSystem.
type System struct {
	cfg  Config
	core *cpu.Core
	l1d  *cache.Cache
	l2c  *cache.Cache
	llc  *cache.Cache
	mem  *dram.DRAM
	dtlb *tlb.TLB
	pf   prefetch.Prefetcher

	// llcPF, when non-nil, is a prefetcher attached at the LLC: it
	// trains on LLC demand accesses (L2 misses) and its requests fill
	// the LLC only — the placement the paper's §V-B uses for "original
	// Bingo at LLC".
	llcPF prefetch.Prefetcher

	pfStats   PrefetchIssueStats
	statsOn   bool
	coreIndex uint64 // used by multicore to interleave DRAM channels

	// lt, when non-nil, tracks every prefetch request from issue to
	// resolution (timely/late/useless/redundant). Nil keeps the hot
	// path free of tracing work.
	lt *lifecycleTracker

	// Per-level prefetch queues: staging queues between the prefetcher
	// and the cache pipeline. An entry is occupied from issue until the
	// cache accepts the request (one access latency), so the PQ bounds
	// the short-term issue rate while the MSHRs bound in-flight depth —
	// matching ChampSim's structure.
	pq1, pq2, pqL pqTracker

	// backInv handles inclusive-LLC back-invalidation. Single-core
	// systems invalidate their own upper levels; a multicore broadcasts
	// across every core sharing the LLC.
	backInv func(line mem.Addr)

	// Dependency tracking: prevDone is the completion cycle of the
	// immediately preceding load; chainDone tracks completions per
	// (hashed) PC. Pointer chases serialize on their own chain while
	// independent walkers keep their memory-level parallelism.
	prevDone  uint64
	chainDone [64]uint64

	// Scratch buffers reused by the issue paths so a steady-state
	// access allocates nothing (see prefetch.BulkIssuer). issueBuf
	// backs issuePrefetches, issueBufLLC backs issueLLCPrefetches —
	// separate because an LLC drain can run while a demand access is
	// still between lookup and issue.
	issueBuf    []prefetch.Request
	issueBufLLC []prefetch.Request
}

// NewSystem builds a system around the prefetcher; it panics on invalid
// configuration. Pass prefetch.Nop{} for the non-prefetching baseline.
func NewSystem(cfg Config, pf prefetch.Prefetcher) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		cfg:  cfg,
		core: cpu.New(cfg.Core),
		l1d:  cache.New(cfg.L1D),
		l2c:  cache.New(cfg.L2C),
		llc:  cache.New(cfg.LLC),
		mem:  dram.New(cfg.DRAM),
		dtlb: tlb.New(cfg.TLB),
		pf:   pf,
	}
	s.backInv = s.invalidateUpper
	s.wireFeedback()
	s.pq1 = newPQTracker(cfg.L1D.PQSize)
	s.pq2 = newPQTracker(cfg.L2C.PQSize)
	s.pqL = newPQTracker(cfg.LLC.PQSize)
	s.initScratch()
	return s
}

// initScratch sizes the issue-path scratch buffers to the largest
// possible single drain so steady-state appends never grow them.
func (s *System) initScratch() {
	s.issueBuf = make([]prefetch.Request, 0, max(s.cfg.L1D.PQSize, 1))
	s.issueBufLLC = make([]prefetch.Request, 0, max(s.cfg.LLC.PQSize, 1))
}

// pqTracker bounds in-flight prefetches at one level.
type pqTracker struct {
	done []uint64 // completion cycles of occupied entries
}

func newPQTracker(capacity int) pqTracker {
	return pqTracker{done: make([]uint64, 0, capacity)}
}

// free reports whether an entry is available at `now`, pruning
// completed entries.
func (p *pqTracker) free(now uint64) bool {
	live := p.done[:0]
	for _, d := range p.done {
		if d > now {
			live = append(live, d)
		}
	}
	p.done = live
	return len(p.done) < cap(p.done)
}

func (p *pqTracker) add(done uint64) { p.done = append(p.done, done) }

// invalidateUpper removes a line from this core's private levels.
func (s *System) invalidateUpper(line mem.Addr) {
	s.l2c.Invalidate(line)
	if s.l1d.Invalidate(line) {
		s.pf.OnEvict(line)
	}
}

// wireFeedback routes prefetched-line outcomes back to the prefetcher
// (SPP+PPF and Pythia learn from them).
func (s *System) wireFeedback() {
	s.l1d.PrefetchOutcome = func(line mem.Addr, useful bool) {
		s.pf.OnFill(line, prefetch.LevelL1, useful)
	}
	s.l2c.PrefetchOutcome = func(line mem.Addr, useful bool) {
		s.pf.OnFill(line, prefetch.LevelL2, useful)
	}
	s.llc.PrefetchOutcome = func(line mem.Addr, useful bool) {
		s.pf.OnFill(line, prefetch.LevelLLC, useful)
	}
}

// Prefetcher returns the attached L1D prefetcher.
func (s *System) Prefetcher() prefetch.Prefetcher { return s.pf }

// EnableLifecycleTracing turns on per-request prefetch lifecycle
// tracking: every prefetch is followed from issue through fill to its
// first demand use (or untouched death) and classified as timely,
// late, useless or redundant, aggregated per prefetcher, per cache
// level and per 4KB region. The optional sink receives one
// LifecycleEvent per resolved request (pass nil to keep aggregates
// only). Call before Run; the Result then carries the snapshots.
func (s *System) EnableLifecycleTracing(sink func(LifecycleEvent)) {
	s.lt = newLifecycleTracker(sink)
	s.l1d.PrefetchTrace = s.lt.cacheHook(prefetch.LevelL1)
	s.l2c.PrefetchTrace = s.lt.cacheHook(prefetch.LevelL2)
	s.llc.PrefetchTrace = s.lt.cacheHook(prefetch.LevelLLC)
}

// LifecycleSnapshots returns the current per-prefetcher lifecycle
// aggregates (nil when tracing is off). Run also stores them in its
// Result.
func (s *System) LifecycleSnapshots() []LifecycleSnapshot {
	if s.lt == nil {
		return nil
	}
	return s.lt.snapshots()
}

// AttachLLCPrefetcher installs a prefetcher at the LLC. It observes
// LLC demand accesses (with the PC of the originating load), fills the
// LLC only, and is notified of LLC evictions. Call before Run.
func (s *System) AttachLLCPrefetcher(pf prefetch.Prefetcher) {
	s.llcPF = pf
}

func (s *System) enableStats(on bool) {
	s.statsOn = on
	s.l1d.EnableStats(on)
	s.l2c.EnableStats(on)
	s.llc.EnableStats(on)
	s.mem.EnableStats(on)
	s.dtlb.EnableStats(on)
}

func (s *System) resetStats() {
	s.l1d.ResetStats()
	s.l2c.ResetStats()
	s.llc.ResetStats()
	s.mem.ResetStats()
	s.dtlb.ResetStats()
	s.pfStats = PrefetchIssueStats{}
	if s.lt != nil {
		s.lt.reset()
	}
}

// Run replays the trace and returns the measured result. The first
// cfg.Warmup instructions run with statistics frozen; measurement then
// covers cfg.Measure instructions (or the rest of the trace if 0).
func (s *System) Run(src trace.Source) Result {
	src.Reset()
	s.enableStats(false)

	var startCycle, startInstr uint64
	warm := false
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !warm && s.core.Dispatched() >= s.cfg.Warmup {
			warm = true
			s.resetStats()
			s.enableStats(true)
			startCycle = s.core.Cycle()
			startInstr = s.core.Dispatched()
		}
		if warm && s.cfg.Measure > 0 && s.core.Dispatched()-startInstr >= s.cfg.Measure {
			break
		}
		s.step(r)
	}
	endCycle := s.core.Drain()
	if !warm {
		// Trace shorter than warm-up: measure everything.
		startCycle, startInstr = 0, 0
	}
	var cycles uint64
	if endCycle >= startCycle {
		cycles = endCycle - startCycle
	}
	var lifecycle []LifecycleSnapshot
	if s.lt != nil {
		s.lt.flushOpen()
		lifecycle = s.lt.snapshots()
	}
	return Result{
		Trace:        src.Name(),
		Prefetcher:   s.pf.Name(),
		Instructions: s.core.Dispatched() - startInstr,
		Cycles:       cycles,
		L1D:          s.l1d.Stats(),
		L2C:          s.l2c.Stats(),
		LLC:          s.llc.Stats(),
		DRAM:         s.mem.Stats(),
		TLB:          s.dtlb.Stats(),
		PF:           s.pfStats,
		Lifecycle:    lifecycle,
	}
}

// step dispatches one trace record: its leading non-memory instructions
// and the load itself. Address-dependent loads wait for the previous
// load's data before issuing to the memory hierarchy.
func (s *System) step(r trace.Record) {
	if r.Gap > 0 {
		s.core.DispatchNonLoads(int(r.Gap))
	}
	s.core.DispatchLoad(func(issue uint64) uint64 {
		chain := mem.HashPC(r.PC, 6)
		switch r.Dep {
		case trace.DepPrev:
			if s.prevDone > issue {
				issue = s.prevDone
			}
		case trace.DepChain:
			if s.chainDone[chain] > issue {
				issue = s.chainDone[chain]
			}
		}
		done := s.demandAccess(r.PC, r.Addr, issue)
		s.chainDone[chain] = done
		s.prevDone = done
		return done
	})
}

// demandAccess services a demand load, trains the prefetcher, and lets
// it issue; it returns the data-ready cycle. Address translation
// happens first: TLB misses delay the cache access.
func (s *System) demandAccess(pc uint64, addr mem.Addr, now uint64) uint64 {
	now += s.dtlb.Translate(addr)
	line := addr.Line()
	done, hit := s.lookupL1(line, now, pc)
	s.pf.Train(prefetch.Access{PC: pc, Addr: addr, Cycle: now, Hit: hit})
	s.issuePrefetches(now)
	return done
}

// lookupL1 performs the demand path at L1D, walking the lower hierarchy
// on a miss.
func (s *System) lookupL1(line mem.Addr, now uint64, pc uint64) (uint64, bool) {
	if hit, ready := s.l1d.Lookup(line, now, true); hit {
		return ready, true
	}
	if done, ok := s.l1d.InFlight(line, now); ok {
		return done, false // merged onto an outstanding miss
	}
	// Demand misses stall (rather than drop) when the MSHR file is full.
	t := now
	for !s.l1d.ReserveMSHR(line, t, t+1, true) {
		next, ok := s.l1d.EarliestCompletion(t)
		if !ok {
			break
		}
		t = next
	}
	done := s.fetchL2(line, t+s.cfg.L1D.Latency, true, false, pc)
	s.l1d.ReserveMSHR(line, t, done, true) // update the reserved completion
	s.fillL1(line, done, false)
	return done, false
}

// fetchL2 returns the cycle the line is available from L2 (walking LLC
// and DRAM as needed). demand marks demand-initiated walks for the
// stats; pf marks prefetch-initiated fills.
func (s *System) fetchL2(line mem.Addr, t uint64, demand, pf bool, pc uint64) uint64 {
	if hit, ready := s.l2c.Lookup(line, t, demand); hit {
		return ready
	}
	if done, ok := s.l2c.InFlight(line, t); ok {
		return done
	}
	done := s.fetchLLC(line, t+s.cfg.L2C.Latency, demand, pf, pc)
	s.l2c.ReserveMSHR(line, t, done, demand)
	s.fillL2(line, done, pf)
	return done
}

// fetchLLC returns the cycle the line is available from the LLC.
func (s *System) fetchLLC(line mem.Addr, t uint64, demand, pf bool, pc uint64) uint64 {
	if demand && s.llcPF != nil {
		defer s.issueLLCPrefetches(t)
	}
	if hit, ready := s.llc.Lookup(line, t, demand); hit {
		if demand && s.llcPF != nil {
			s.llcPF.Train(prefetch.Access{PC: pc, Addr: line, Cycle: t, Hit: true})
		}
		return ready
	}
	if done, ok := s.llc.InFlight(line, t); ok {
		return done
	}
	if demand && s.llcPF != nil {
		s.llcPF.Train(prefetch.Access{PC: pc, Addr: line, Cycle: t, Hit: false})
	}
	done := s.mem.Access(line.LineID()+s.coreIndex, t+s.cfg.LLC.Latency, demand)
	s.llc.ReserveMSHR(line, t, done, demand)
	s.fillLLC(line, done, pf)
	return done
}

// issueLLCPrefetches drains the LLC-attached prefetcher; its requests
// always fill the LLC regardless of their nominal level.
func (s *System) issueLLCPrefetches(now uint64) {
	src := ""
	if s.lt != nil {
		src = s.llcPF.Name()
	}
	for budget := s.cfg.LLC.PQSize; budget > 0; budget-- {
		reqs := prefetch.IssueInto(s.llcPF, s.issueBufLLC[:0], 1)
		s.issueBufLLC = reqs[:0]
		if len(reqs) == 0 {
			return
		}
		r := reqs[0]
		r.Level = prefetch.LevelLLC
		if !s.prefetchOne(r, now, src) {
			if rq, ok := s.llcPF.(prefetch.Requeuer); ok {
				rq.Requeue(reqs[0])
			}
			return
		}
	}
}

// fillL1 inserts into the L1D, notifying the prefetcher of the eviction
// (SMS-style accumulation closes on region eviction).
func (s *System) fillL1(line mem.Addr, ready uint64, pf bool) {
	ev := s.l1d.Fill(line, ready, pf)
	if ev.Kind == cache.EvictClean {
		s.pf.OnEvict(ev.Line)
	}
}

func (s *System) fillL2(line mem.Addr, ready uint64, pf bool) {
	s.l2c.Fill(line, ready, pf)
}

// fillLLC inserts into the inclusive LLC; displaced lines are
// back-invalidated from the upper levels.
func (s *System) fillLLC(line mem.Addr, ready uint64, pf bool) {
	ev := s.llc.Fill(line, ready, pf)
	if ev.Kind == cache.EvictClean {
		s.backInv(ev.Line)
		if s.llcPF != nil {
			s.llcPF.OnEvict(ev.Line)
		}
	}
}

// issuePrefetches drains the prefetcher into the hierarchy, bounded by
// the L1D prefetch queue size per demand access.
//
// Prefetchers that support requeueing get the paper's PB
// suspend/resume semantics: unadmitted requests go back and are
// retried on a later access, without blocking requests for other
// levels behind them. For queue-only prefetchers a failed admission
// stops this round, leaving the remaining requests in their internal
// queue for the next access.
func (s *System) issuePrefetches(now uint64) {
	src := ""
	if s.lt != nil {
		src = s.pf.Name()
	}
	if rq, ok := s.pf.(prefetch.Requeuer); ok {
		reqs := prefetch.IssueInto(s.pf, s.issueBuf[:0], s.cfg.L1D.PQSize)
		s.issueBuf = reqs[:0]
		for _, r := range reqs {
			if !s.prefetchOne(r, now, src) {
				rq.Requeue(r)
			}
		}
		return
	}
	for budget := s.cfg.L1D.PQSize; budget > 0; budget-- {
		reqs := prefetch.IssueInto(s.pf, s.issueBuf[:0], 1)
		s.issueBuf = reqs[:0]
		if len(reqs) == 0 {
			return
		}
		if !s.prefetchOne(reqs[0], now, src) {
			return
		}
	}
}

// prefetchRoom reports whether the cache can accept a prefetch without
// consuming its demand-reserved MSHR.
func prefetchRoom(c *cache.Cache, now uint64) bool {
	return c.MSHRBusy(now) < c.Config().MSHRs-1
}

// prefetchOne injects a single prefetch request at its target level. It
// reports whether the request was admitted: requests for lines already
// present or in flight are filtered (admitted, nothing to do); requests
// without a free prefetch MSHR return false before consuming any
// downstream bandwidth so the caller can requeue them. src names the
// issuing prefetcher for lifecycle attribution (unused when tracing is
// off).
func (s *System) prefetchOne(r prefetch.Request, now uint64, src string) bool {
	line := r.Addr.Line()
	switch r.Level {
	case prefetch.LevelL1:
		if s.l1d.Contains(line) {
			s.dropRedundant(r.Level, line, now, src)
			return true
		}
		if _, ok := s.l1d.InFlight(line, now); ok {
			s.dropRedundant(r.Level, line, now, src)
			return true
		}
		if !s.pq1.free(now) || !prefetchRoom(s.l1d, now) {
			s.pfStats.DroppedMSH++
			return false
		}
		// Record the issue before the fill walk so the tracker can
		// match the fill event it triggers. Like the other issue stats,
		// lifecycles only accumulate inside the measurement window.
		if s.lt != nil && s.statsOn {
			s.lt.issued(src, r.Level, line, now)
		}
		done := s.fetchL2(line, now+s.cfg.L1D.Latency, false, true, 0)
		s.l1d.ReserveMSHR(line, now, done, false)
		s.pq1.add(now + s.cfg.L1D.Latency)
		s.fillL1(line, done, true)
	case prefetch.LevelL2:
		if s.l2c.Contains(line) {
			s.dropRedundant(r.Level, line, now, src)
			return true
		}
		if _, ok := s.l2c.InFlight(line, now); ok {
			s.dropRedundant(r.Level, line, now, src)
			return true
		}
		if !s.pq2.free(now) || !prefetchRoom(s.l2c, now) {
			s.pfStats.DroppedMSH++
			return false
		}
		if s.lt != nil && s.statsOn {
			s.lt.issued(src, r.Level, line, now)
		}
		done := s.fetchLLC(line, now+s.cfg.L2C.Latency, false, true, 0)
		s.l2c.ReserveMSHR(line, now, done, false)
		s.pq2.add(now + s.cfg.L2C.Latency)
		s.fillL2(line, done, true)
	case prefetch.LevelLLC:
		if s.llc.Contains(line) {
			s.dropRedundant(r.Level, line, now, src)
			return true
		}
		if _, ok := s.llc.InFlight(line, now); ok {
			s.dropRedundant(r.Level, line, now, src)
			return true
		}
		if !s.pqL.free(now) || !prefetchRoom(s.llc, now) {
			s.pfStats.DroppedMSH++
			return false
		}
		if s.lt != nil && s.statsOn {
			s.lt.issued(src, r.Level, line, now)
		}
		done := s.mem.Access(line.LineID()+s.coreIndex, now+s.cfg.LLC.Latency, false)
		s.llc.ReserveMSHR(line, now, done, false)
		s.pqL.add(now + s.cfg.LLC.Latency)
		s.fillLLC(line, done, true)
	default:
		return true
	}
	if s.statsOn {
		s.pfStats.Issued[r.Level]++
	}
	return true
}

// dropRedundant accounts a prefetch filtered at issue (line already
// present or in flight at its target level).
func (s *System) dropRedundant(level prefetch.Level, line mem.Addr, now uint64, src string) {
	s.pfStats.DroppedPQ++
	if s.lt != nil && s.statsOn {
		s.lt.redundant(src, level, line, now)
	}
}
