package sim

import (
	"pmp/internal/cache"
	"pmp/internal/dram"
	"pmp/internal/prefetch"
	"pmp/internal/tlb"
	"pmp/internal/trace"
)

// PrefetchIssueStats counts prefetcher activity at the system level.
type PrefetchIssueStats struct {
	Issued     [4]uint64 // indexed by prefetch.Level
	DroppedPQ  uint64    // request dropped: duplicate or filtered
	DroppedMSH uint64    // request dropped: no prefetch MSHR available
}

// Total returns the total issued prefetches across levels.
func (p PrefetchIssueStats) Total() uint64 {
	return p.Issued[prefetch.LevelL1] + p.Issued[prefetch.LevelL2] + p.Issued[prefetch.LevelLLC]
}

// Result summarizes one measured simulation.
type Result struct {
	Trace      string
	Prefetcher string

	Instructions uint64
	Cycles       uint64

	L1D  cache.Stats
	L2C  cache.Stats
	LLC  cache.Stats
	DRAM dram.Stats
	TLB  tlb.Stats
	PF   PrefetchIssueStats

	// Lifecycle holds one snapshot per prefetcher (the L1D-trained
	// prefetcher, plus the LLC-attached one when present). Nil unless
	// lifecycle tracing was enabled before Run.
	Lifecycle []LifecycleSnapshot
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MPKI returns LLC demand misses per kilo-instruction (the paper's
// workload classification metric).
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.LLC.DemandMisses) / float64(r.Instructions) * 1000
}

// System is a single-core simulated machine: a 1-core Machine with the
// classic single-trace Run signature. Construct with NewSystem.
type System struct {
	mach *Machine
}

// NewSystem builds a system around the prefetcher; it panics on invalid
// configuration. Pass prefetch.Nop{} for the non-prefetching baseline.
func NewSystem(cfg Config, pf prefetch.Prefetcher) *System {
	return &System{mach: NewMachine(cfg, []prefetch.Prefetcher{pf})}
}

// Machine returns the underlying 1-core machine.
func (s *System) Machine() *Machine { return s.mach }

// Prefetcher returns the attached L1D prefetcher.
func (s *System) Prefetcher() prefetch.Prefetcher { return s.mach.Core(0).Prefetcher() }

// EnableLifecycleTracing turns on per-request prefetch lifecycle
// tracking: every prefetch is followed from issue through fill to its
// first demand use (or untouched death) and classified as timely,
// late, useless or redundant, aggregated per prefetcher, per cache
// level and per 4KB region. The optional sink receives one
// LifecycleEvent per resolved request (pass nil to keep aggregates
// only). Call before Run; the Result then carries the snapshots.
func (s *System) EnableLifecycleTracing(sink func(LifecycleEvent)) {
	s.mach.EnableLifecycleTracing(sink)
}

// LifecycleSnapshots returns the current per-prefetcher lifecycle
// aggregates (nil when tracing is off). Run also stores them in its
// Result.
func (s *System) LifecycleSnapshots() []LifecycleSnapshot {
	return s.mach.Core(0).LifecycleSnapshots()
}

// AttachLLCPrefetcher installs a prefetcher at the LLC. It observes
// LLC demand accesses (with the PC of the originating load), fills the
// LLC only, and is notified of LLC evictions. Call before Run.
func (s *System) AttachLLCPrefetcher(pf prefetch.Prefetcher) {
	c := s.mach.Core(0)
	c.AttachPrefetcher(len(c.levels)-1, pf)
}

// Run replays the trace and returns the measured result. The first
// cfg.Warmup instructions run outside the measurement window (counters
// reset at the warm-up boundary); measurement then covers cfg.Measure
// instructions (or the rest of the trace if 0). A trace shorter than
// the warm-up window is measured in full.
func (s *System) Run(src trace.Source) Result {
	return s.mach.Run([]trace.Source{src})[0]
}
