package sim

import (
	"reflect"
	"testing"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/nextline"
	"pmp/internal/trace"
)

// quickConfig returns a configuration sized for fast tests.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Warmup = 10_000
	return cfg
}

func streamTrace(n int) trace.Source {
	p := trace.DefaultStreamParams()
	p.Streams = 2
	p.WorkingSet = 8 << 20
	return trace.NewStream("stream", 1, n, p)
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Table IV geometry sanity.
	c := DefaultConfig()
	if c.L1D.SizeBytes() != 48*1024 {
		t.Errorf("L1D = %d bytes, want 48KB", c.L1D.SizeBytes())
	}
	if c.L2C.SizeBytes() != 512*1024 {
		t.Errorf("L2C = %d bytes, want 512KB", c.L2C.SizeBytes())
	}
	if c.LLC.SizeBytes() != 2*1024*1024 {
		t.Errorf("LLC = %d bytes, want 2MB", c.LLC.SizeBytes())
	}
}

func TestConfigValidateRejects(t *testing.T) {
	c := DefaultConfig()
	c.L1D.Sets = 0
	if err := c.Validate(); err == nil {
		t.Error("bad L1D accepted")
	}
	c = DefaultConfig()
	c.L2C.Sets = 16 // smaller than L1D
	if err := c.Validate(); err == nil {
		t.Error("non-monotonic hierarchy accepted")
	}
	c = DefaultConfig()
	c.DRAM.Channels = 0
	if err := c.Validate(); err == nil {
		t.Error("bad DRAM accepted")
	}
	c = DefaultConfig()
	c.Core.Width = 0
	if err := c.Validate(); err == nil {
		t.Error("bad core accepted")
	}
}

func TestConfigSweepHelpers(t *testing.T) {
	c := DefaultConfig().WithLLCMB(8)
	if c.LLC.SizeBytes() != 8*1024*1024 {
		t.Errorf("WithLLCMB(8) = %d bytes", c.LLC.SizeBytes())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("8MB config invalid: %v", err)
	}
	c = DefaultConfig().WithBandwidth(800)
	if c.DRAM.TransferMTps != 800 {
		t.Error("WithBandwidth did not apply")
	}
}

func TestBaselineRunProducesPlausibleResult(t *testing.T) {
	s := NewSystem(quickConfig(), prefetch.Nop{})
	res := s.Run(streamTrace(50_000))
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	ipc := res.IPC()
	if ipc <= 0 || ipc > 4 {
		t.Errorf("IPC = %v, want in (0, 4]", ipc)
	}
	if res.L1D.DemandAccesses == 0 {
		t.Error("no demand accesses recorded")
	}
	if res.DRAM.Requests == 0 {
		t.Error("a streaming working set beyond LLC must reach DRAM")
	}
	if res.Prefetcher != "none" || res.Trace != "stream" {
		t.Errorf("labels = %q/%q", res.Prefetcher, res.Trace)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	r1 := NewSystem(quickConfig(), prefetch.Nop{}).Run(streamTrace(30_000))
	r2 := NewSystem(quickConfig(), prefetch.Nop{}).Run(streamTrace(30_000))
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("identical runs differ:\n%+v\n%+v", r1, r2)
	}
}

func TestPMPBeatsBaselineOnStreams(t *testing.T) {
	tr := streamTrace(120_000)
	base := NewSystem(quickConfig(), prefetch.Nop{}).Run(tr)
	withPMP := NewSystem(quickConfig(), core.New(core.DefaultConfig())).Run(tr)

	if withPMP.IPC() <= base.IPC() {
		t.Errorf("PMP IPC %.3f should beat baseline %.3f on streams",
			withPMP.IPC(), base.IPC())
	}
	if withPMP.L1D.DemandMisses >= base.L1D.DemandMisses {
		t.Errorf("PMP misses %d should undercut baseline %d",
			withPMP.L1D.DemandMisses, base.L1D.DemandMisses)
	}
	if withPMP.PF.Total() == 0 {
		t.Error("PMP issued no prefetches")
	}
	if withPMP.L1D.UsefulPrefetch == 0 {
		t.Error("no useful prefetches on a pure stream")
	}
}

func TestPrefetchTrafficCounted(t *testing.T) {
	tr := streamTrace(120_000)
	base := NewSystem(quickConfig(), prefetch.Nop{}).Run(tr)
	withPMP := NewSystem(quickConfig(), core.New(core.DefaultConfig())).Run(tr)
	if withPMP.DRAM.PrefetchRequests == 0 {
		t.Error("prefetches should reach DRAM")
	}
	// NMT > 1: prefetching adds traffic (paper §V-D).
	nmt := float64(withPMP.DRAM.Requests) / float64(base.DRAM.Requests)
	if nmt <= 1.0 {
		t.Errorf("NMT = %.2f, want > 1", nmt)
	}
}

func TestRandomTraceGainsLittle(t *testing.T) {
	p := trace.DefaultPointerChaseParams()
	p.HotProb = 0
	mk := func() trace.Source { return trace.NewPointerChase("chase", 3, 80_000, p) }
	base := NewSystem(quickConfig(), prefetch.Nop{}).Run(mk())
	withPMP := NewSystem(quickConfig(), core.New(core.DefaultConfig())).Run(mk())
	// Pure random accesses are unprefetchable: PMP cannot win, and its
	// aggressive low-level prefetching (the paper's own NMT is ~200%)
	// costs bandwidth on an already saturated channel, so some loss is
	// expected — but it must stay bounded.
	ratio := withPMP.IPC() / base.IPC()
	if ratio < 0.50 || ratio > 1.10 {
		t.Errorf("NIPC on random trace = %.2f, want bounded near/below 1", ratio)
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	// A trace long enough to warm up reports only post-warm-up
	// activity: the counters reset at the boundary, so the measured
	// demand accesses must fall well short of the trace's total loads.
	cfg := quickConfig()
	res := NewSystem(cfg, prefetch.Nop{}).Run(streamTrace(20_000))
	if res.L1D.DemandAccesses == 0 {
		t.Fatal("no post-warm-up accesses recorded")
	}
	if res.L1D.DemandAccesses >= 20_000 {
		t.Errorf("warm-up accesses leaked into stats: %d demand accesses for a 20k-load trace",
			res.L1D.DemandAccesses)
	}
}

// TestShortTraceStillMeasured is the regression test for the
// short-trace fallback: a trace that ends before cfg.Warmup used to
// report measured Instructions/Cycles but all-zero cache/DRAM/TLB
// stats, because statistics were only switched on at the warm-up
// boundary. Statistics now run from cycle 0 (and reset at the
// boundary), so the whole-trace measurement is internally consistent.
func TestShortTraceStillMeasured(t *testing.T) {
	cfg := quickConfig()
	cfg.Warmup = 1 << 40 // never leaves warm-up
	res := NewSystem(cfg, prefetch.Nop{}).Run(streamTrace(20_000))
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("short trace not measured: %+v", res)
	}
	if res.L1D.DemandAccesses != 20_000 {
		t.Errorf("L1D demand accesses = %d, want 20000 (one per load)", res.L1D.DemandAccesses)
	}
	if res.TLB.Accesses == 0 {
		t.Error("TLB stats empty for a short trace")
	}
	if res.DRAM.Requests == 0 {
		t.Error("DRAM stats empty for a short trace (working set exceeds the LLC)")
	}
}

func TestMeasureWindowStopsEarly(t *testing.T) {
	cfg := quickConfig()
	cfg.Measure = 5_000
	s := NewSystem(cfg, prefetch.Nop{})
	res := s.Run(streamTrace(200_000))
	if res.Instructions < 5_000 || res.Instructions > 6_000 {
		t.Errorf("measured %d instructions, want ~5000", res.Instructions)
	}
}

func TestMPKIReportedForIrregularTrace(t *testing.T) {
	p := trace.DefaultPointerChaseParams()
	p.HotProb = 0
	s := NewSystem(quickConfig(), prefetch.Nop{})
	res := s.Run(trace.NewPointerChase("chase", 3, 80_000, p))
	if res.MPKI() < 5 {
		t.Errorf("irregular trace MPKI = %.1f, want > 5 (paper's floor)", res.MPKI())
	}
}

func TestMulticoreHomogeneous(t *testing.T) {
	cfg := quickConfig()
	cfg.Warmup = 5_000
	cfg.Measure = 20_000
	cfg.DRAM.Channels = 2
	pfs := make([]prefetch.Prefetcher, 4)
	srcs := make([]trace.Source, 4)
	for i := range pfs {
		pfs[i] = core.New(core.DefaultConfig())
		srcs[i] = trace.NewStream("s", int64(i+1), 200_000, trace.DefaultStreamParams())
	}
	m := NewMulticore(cfg, pfs)
	results := m.Run(srcs)
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Instructions < cfg.Measure {
			t.Errorf("core %d measured %d instructions, want >= %d", i, r.Instructions, cfg.Measure)
		}
		if r.IPC() <= 0 {
			t.Errorf("core %d IPC = %v", i, r.IPC())
		}
	}
}

func TestMulticoreContentionSlowsCores(t *testing.T) {
	// One core alone vs four cores sharing LLC+DRAM on the same trace:
	// per-core IPC must drop under contention.
	cfg := quickConfig()
	cfg.Warmup = 5_000
	cfg.Measure = 20_000

	solo := NewMulticore(cfg, []prefetch.Prefetcher{prefetch.Nop{}})
	soloRes := solo.Run([]trace.Source{streamTrace(200_000)})

	pfs := make([]prefetch.Prefetcher, 4)
	srcs := make([]trace.Source, 4)
	for i := range pfs {
		pfs[i] = prefetch.Nop{}
		srcs[i] = trace.NewStream("s", int64(i+1), 200_000, trace.DefaultStreamParams())
	}
	quad := NewMulticore(cfg, pfs)
	quadRes := quad.Run(srcs)

	if quadRes[0].IPC() >= soloRes[0].IPC() {
		t.Errorf("4-core IPC %.3f should trail solo %.3f (shared DRAM)",
			quadRes[0].IPC(), soloRes[0].IPC())
	}
}

func TestMulticoreShortTraceReplays(t *testing.T) {
	cfg := quickConfig()
	cfg.Warmup = 100
	cfg.Measure = 50_000
	m := NewMulticore(cfg, []prefetch.Prefetcher{prefetch.Nop{}})
	res := m.Run([]trace.Source{streamTrace(1_000)}) // far shorter than measure
	if res[0].Instructions < cfg.Measure {
		t.Errorf("short trace should replay to fill the window, got %d", res[0].Instructions)
	}
}

func TestBandwidthSweepChangesPerformance(t *testing.T) {
	mk := func(mtps int) float64 {
		cfg := quickConfig().WithBandwidth(mtps)
		return NewSystem(cfg, prefetch.Nop{}).Run(streamTrace(80_000)).IPC()
	}
	slow, fast := mk(800), mk(6400)
	if fast <= slow {
		t.Errorf("IPC at 6400MT/s (%.3f) should beat 800MT/s (%.3f)", fast, slow)
	}
}

func TestLLCSweepChangesMisses(t *testing.T) {
	run := func(mb int) uint64 {
		cfg := quickConfig().WithLLCMB(mb)
		// Working set ~4MB: fits in 8MB LLC, thrashes 2MB.
		p := trace.PointerChaseParams{WorkingSet: 4 << 20, HotSet: 1 << 20, HotProb: 0.3, GapMean: 4}
		src := trace.NewPointerChase("c", 9, 80_000, p)
		return NewSystem(cfg, prefetch.Nop{}).Run(src).LLC.DemandMisses
	}
	small, big := run(2), run(8)
	if big >= small {
		t.Errorf("8MB LLC misses (%d) should undercut 2MB (%d)", big, small)
	}
}

func TestMulticoreDeterministic(t *testing.T) {
	run := func() []Result {
		cfg := quickConfig()
		cfg.Warmup = 5_000
		cfg.Measure = 15_000
		pfs := make([]prefetch.Prefetcher, 2)
		srcs := make([]trace.Source, 2)
		for i := range pfs {
			pfs[i] = core.New(core.DefaultConfig())
			srcs[i] = trace.NewStream("s", int64(i+1), 100_000, trace.DefaultStreamParams())
		}
		return NewMulticore(cfg, pfs).Run(srcs)
	}
	a, b := run(), run()
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("core %d results differ across identical runs", i)
		}
	}
}

func TestLLCPrefetcherPlacement(t *testing.T) {
	// An LLC-attached next-line prefetcher on a stream must reduce LLC
	// misses relative to no prefetching, without touching L1 stats.
	mk := func(attach bool) Result {
		cfg := quickConfig()
		sys := NewSystem(cfg, prefetch.Nop{})
		if attach {
			sys.AttachLLCPrefetcher(nextline.New(4))
		}
		return sys.Run(streamTrace(60_000))
	}
	base := mk(false)
	with := mk(true)
	if with.LLC.DemandMisses >= base.LLC.DemandMisses {
		t.Errorf("LLC prefetcher should cut LLC misses: %d vs %d",
			with.LLC.DemandMisses, base.LLC.DemandMisses)
	}
	if with.L1D.PrefetchFills != 0 {
		t.Errorf("LLC-attached prefetcher must not fill L1D, got %d fills",
			with.L1D.PrefetchFills)
	}
}
