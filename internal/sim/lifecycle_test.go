package sim

import (
	"sync"
	"testing"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/nextline"
	"pmp/internal/trace"
)

// checkSnapshotConsistent asserts the structural invariants every
// lifecycle snapshot must satisfy.
func checkSnapshotConsistent(t *testing.T, sn LifecycleSnapshot) {
	t.Helper()
	if got := sn.Total.Resolved() + sn.Open; got != sn.Total.Issued {
		t.Errorf("%s: timely %d + late %d + useless %d + open %d != issued %d",
			sn.Prefetcher, sn.Total.Timely, sn.Total.Late, sn.Total.Useless, sn.Open, sn.Total.Issued)
	}
	var perLevel, regions LifecycleStats
	for _, lv := range sn.PerLevel {
		perLevel.add(lv)
	}
	for _, r := range sn.Regions {
		regions.add(r.Stats)
	}
	if perLevel != sn.Total {
		t.Errorf("%s: per-level sum %+v != total %+v", sn.Prefetcher, perLevel, sn.Total)
	}
	if regions != sn.Total {
		t.Errorf("%s: per-region sum %+v != total %+v", sn.Prefetcher, regions, sn.Total)
	}
	for i := 1; i < len(sn.Regions); i++ {
		if sn.Regions[i].Stats.Issued > sn.Regions[i-1].Stats.Issued {
			t.Errorf("%s: regions not sorted by issued count", sn.Prefetcher)
			break
		}
	}
}

func TestLifecycleTracksStreamPrefetches(t *testing.T) {
	var events []LifecycleEvent
	sys := NewSystem(quickConfig(), nextline.New(2))
	sys.EnableLifecycleTracing(func(ev LifecycleEvent) { events = append(events, ev) })
	res := sys.Run(streamTrace(60_000))

	if len(res.Lifecycle) != 1 {
		t.Fatalf("lifecycle snapshots = %d, want 1", len(res.Lifecycle))
	}
	sn := res.Lifecycle[0]
	if sn.Prefetcher != "nextline" {
		t.Errorf("snapshot prefetcher = %q", sn.Prefetcher)
	}
	checkSnapshotConsistent(t, sn)
	if sn.Total.Issued == 0 {
		t.Fatal("a stream trace must issue prefetches")
	}
	if sn.Total.Used() == 0 {
		t.Error("a stream trace must produce used prefetches")
	}
	if len(sn.Regions) == 0 {
		t.Error("no per-region aggregates recorded")
	}

	// The sink saw one resolution per resolved lifecycle plus redundant
	// drops, plus the open flush at end of run.
	want := sn.Total.Resolved() + sn.Total.Redundant + sn.Open
	if uint64(len(events)) != want {
		t.Errorf("sink saw %d events, want %d", len(events), want)
	}
	for _, ev := range events {
		if ev.Prefetcher != "nextline" {
			t.Fatalf("event attributed to %q", ev.Prefetcher)
		}
		switch ev.Class {
		case "timely":
			if ev.Use < ev.Fill || ev.Fill < ev.Issue {
				t.Fatalf("timely event out of order: %+v", ev)
			}
		case "late":
			if ev.Fill <= ev.Use {
				t.Fatalf("late event must fill after use: %+v", ev)
			}
		case "useless", "redundant", "open":
		default:
			t.Fatalf("unknown class %q", ev.Class)
		}
		if ev.Region != ev.Line&^4095 {
			t.Fatalf("region %#x is not the 4KB base of line %#x", ev.Region, ev.Line)
		}
	}
}

func TestLifecycleAgreesWithCacheStats(t *testing.T) {
	sys := NewSystem(quickConfig(), nextline.New(1))
	sys.EnableLifecycleTracing(nil)
	res := sys.Run(streamTrace(60_000))
	sn := res.Lifecycle[0]

	// nextline targets L1 only, so its used count must track the L1D's
	// aggregate prefetch accounting over the same window. Prefetches
	// issued during warm-up but used after it are counted by the cache
	// and not the tracker, so allow a small boundary slack.
	l1 := sn.PerLevel[prefetch.LevelL1]
	if l1.Used() > res.L1D.UsefulPrefetch {
		t.Errorf("lifecycle used %d exceeds L1D useful %d", l1.Used(), res.L1D.UsefulPrefetch)
	}
	if res.L1D.UsefulPrefetch-l1.Used() > res.L1D.UsefulPrefetch/100+16 {
		t.Errorf("lifecycle used %d too far below L1D useful %d", l1.Used(), res.L1D.UsefulPrefetch)
	}
	if l1.Late > res.L1D.UsefulPrefetch {
		t.Errorf("late %d exceeds useful %d", l1.Late, res.L1D.UsefulPrefetch)
	}
	if sn.Total.Redundant != res.PF.DroppedPQ {
		t.Errorf("lifecycle redundant %d != DroppedPQ %d", sn.Total.Redundant, res.PF.DroppedPQ)
	}
}

func TestLifecycleTracingOffByDefault(t *testing.T) {
	res := NewSystem(quickConfig(), nextline.New(2)).Run(streamTrace(30_000))
	if res.Lifecycle != nil {
		t.Errorf("lifecycle recorded without tracing: %+v", res.Lifecycle)
	}
}

func TestLifecycleDeterministic(t *testing.T) {
	run := func() []LifecycleSnapshot {
		sys := NewSystem(quickConfig(), core.New(core.DefaultConfig()))
		sys.EnableLifecycleTracing(nil)
		return sys.Run(streamTrace(40_000)).Lifecycle
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Total != b[i].Total || a[i].Open != b[i].Open {
			t.Errorf("snapshot %d differs:\n%+v\n%+v", i, a[i].Total, b[i].Total)
		}
	}
}

func TestMulticoreLifecycleSumsAcrossCores(t *testing.T) {
	const cores = 2
	cfg := quickConfig()
	cfg.Warmup = 5_000
	cfg.Measure = 15_000
	pfs := make([]prefetch.Prefetcher, cores)
	srcs := make([]trace.Source, cores)
	for i := range pfs {
		pfs[i] = nextline.New(2)
		srcs[i] = trace.NewStream("s", int64(i+1), 100_000, trace.DefaultStreamParams())
	}
	m := NewMulticore(cfg, pfs)
	m.EnableLifecycleTracing(nil)
	results := m.Run(srcs)

	var perCore []LifecycleSnapshot
	var issued uint64
	for i, r := range results {
		if len(r.Lifecycle) != 1 {
			t.Fatalf("core %d: %d snapshots", i, len(r.Lifecycle))
		}
		checkSnapshotConsistent(t, r.Lifecycle[0])
		issued += r.Lifecycle[0].Total.Issued
		perCore = append(perCore, r.Lifecycle[0])
	}
	if issued == 0 {
		t.Fatal("no prefetches issued across cores")
	}

	agg := AggregateLifecycle(perCore)
	if agg.Total.Issued != issued {
		t.Errorf("aggregate issued %d != per-core sum %d", agg.Total.Issued, issued)
	}
	var want LifecycleStats
	for _, sn := range perCore {
		want.add(sn.Total)
	}
	if agg.Total != want {
		t.Errorf("aggregate total %+v != summed %+v", agg.Total, want)
	}
	var regions LifecycleStats
	for _, r := range agg.Regions {
		regions.add(r.Stats)
	}
	if regions != agg.Total {
		t.Errorf("aggregate regions %+v != total %+v", regions, agg.Total)
	}
	// LifecycleSnapshots must agree with the Run results.
	snaps := m.LifecycleSnapshots()
	if len(snaps) != cores {
		t.Fatalf("LifecycleSnapshots returned %d cores", len(snaps))
	}
	for i := range snaps {
		if snaps[i][0].Total != perCore[i].Total {
			t.Errorf("core %d: LifecycleSnapshots %+v != Result %+v", i, snaps[i][0].Total, perCore[i].Total)
		}
	}
}

// TestMulticoreLifecycleInstancesIsolated runs two traced multicore
// simulations concurrently: with per-instance trackers there is no
// shared mutable state, so this must pass under -race.
func TestMulticoreLifecycleInstancesIsolated(t *testing.T) {
	run := func() LifecycleStats {
		cfg := quickConfig()
		cfg.Warmup = 2_000
		cfg.Measure = 8_000
		pfs := []prefetch.Prefetcher{nextline.New(2), nextline.New(2)}
		srcs := []trace.Source{
			trace.NewStream("a", 1, 50_000, trace.DefaultStreamParams()),
			trace.NewStream("b", 2, 50_000, trace.DefaultStreamParams()),
		}
		m := NewMulticore(cfg, pfs)
		m.EnableLifecycleTracing(nil)
		results := m.Run(srcs)
		var sum LifecycleStats
		for _, r := range results {
			for _, sn := range r.Lifecycle {
				sum.add(sn.Total)
			}
		}
		return sum
	}
	var wg sync.WaitGroup
	totals := make([]LifecycleStats, 4)
	for i := range totals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			totals[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(totals); i++ {
		if totals[i] != totals[0] {
			t.Errorf("instance %d diverged: %+v vs %+v", i, totals[i], totals[0])
		}
	}
	if totals[0].Issued == 0 {
		t.Error("no prefetches issued")
	}
}
