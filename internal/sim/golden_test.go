// Golden-digest guard for the simulator's bit-identity invariant.
//
// Every registered prefetcher is run at QuickScale, single-core over
// the whole trace subset and 4-core homogeneous, and the JSON-encoded
// Result sets are hashed against testdata/golden_quickscale.json.
// Refactors of the simulator (hierarchy, run loop, issue paths) must
// keep these digests stable; regenerate deliberately with
//
//	go test ./internal/sim -run TestGoldenQuickScale -update-golden
//
// after any change that intentionally alters simulated behaviour.
package sim_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"sync"
	"testing"

	"pmp/internal/bench"
	"pmp/internal/prefetch"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_quickscale.json from the current simulator output")

const goldenPath = "testdata/golden_quickscale.json"

// goldenFile is the committed digest set: one sha256 per (mode,
// prefetcher) Result slice, keyed "1core/<name>" and "4core/<name>".
type goldenFile struct {
	Comment string            `json:"comment"`
	Digests map[string]string `json:"digests"`
}

func digest(t *testing.T, results []sim.Result) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// goldenDigests simulates the full QuickScale set and returns its
// digest map. Prefetchers run concurrently; each simulation itself is
// single-threaded and deterministic.
func goldenDigests(t *testing.T) map[string]string {
	scale := bench.QuickScale()
	cfg := scale.Config()
	// The 4-core runs use the paper's multicore setup (two DRAM
	// channels) on the first four suite traces.
	mcfg := cfg
	mcfg.DRAM.Channels = 2
	specs := scale.Specs()
	if len(specs) < 4 {
		t.Fatalf("QuickScale has %d traces, need >= 4", len(specs))
	}

	digests := make(map[string]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range bench.Names() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()

			single := make([]sim.Result, 0, len(specs))
			for _, sp := range specs {
				single = append(single, bench.RunOne(sp, bench.NewPrefetcher(name), scale, cfg))
			}

			pfs := make([]prefetch.Prefetcher, 4)
			srcs := make([]trace.Source, 4)
			for i := range pfs {
				pfs[i] = bench.NewPrefetcher(name)
				srcs[i] = specs[i].New(scale.Records)
			}
			multi := sim.NewMulticore(mcfg, pfs).Run(srcs)

			mu.Lock()
			digests["1core/"+name] = digest(t, single)
			digests["4core/"+name] = digest(t, multi)
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	return digests
}

func TestGoldenQuickScaleDigests(t *testing.T) {
	got := goldenDigests(t)

	if *updateGolden {
		data, err := json.MarshalIndent(goldenFile{
			Comment: "sha256 of the JSON-encoded QuickScale Result sets; regenerate with -update-golden",
			Digests: got,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (generate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want.Digests[k]
		if !ok {
			t.Errorf("%s: no golden digest recorded (run -update-golden)", k)
			continue
		}
		if got[k] != w {
			t.Errorf("%s: digest %s != golden %s — simulator output changed", k, got[k], w)
		}
	}
	for k := range want.Digests {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: golden digest has no current run (lineup changed?)", k)
		}
	}
}
