package sim

import (
	"sort"

	"pmp/internal/cache"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// LifecycleClass is the final classification of one prefetch request.
type LifecycleClass uint8

const (
	// LifecycleTimely: the fill completed before (or exactly when) the
	// first demand use needed the data.
	LifecycleTimely LifecycleClass = iota
	// LifecycleLate: a demand use hit the line while its fill was still
	// in flight, paying part of the miss latency.
	LifecycleLate
	// LifecycleUseless: the line left the cache (eviction or
	// back-invalidation) without ever being demand-touched.
	LifecycleUseless
	// LifecycleRedundant: the request was dropped at issue because the
	// line was already present or already in flight at its target level.
	LifecycleRedundant
	// LifecycleOpen: still unresolved when the snapshot or trace ended.
	LifecycleOpen
)

// String implements fmt.Stringer.
func (c LifecycleClass) String() string {
	switch c {
	case LifecycleTimely:
		return "timely"
	case LifecycleLate:
		return "late"
	case LifecycleUseless:
		return "useless"
	case LifecycleRedundant:
		return "redundant"
	case LifecycleOpen:
		return "open"
	default:
		return "invalid"
	}
}

// LifecycleEvent is one fully resolved prefetch lifecycle, suitable for
// JSONL export (`pmpsim -lifecycle-jsonl`). Cycles are absolute core
// cycles; Fill and Use are zero when the lifecycle never reached that
// stage.
type LifecycleEvent struct {
	Seq        uint64 `json:"seq"`
	Prefetcher string `json:"prefetcher"`
	Level      string `json:"level"`
	Line       uint64 `json:"line"`
	Region     uint64 `json:"region"` // 4KB region base address
	Issue      uint64 `json:"issue"`
	Fill       uint64 `json:"fill,omitempty"`
	Use        uint64 `json:"use,omitempty"`
	Class      string `json:"class"`
}

// LifecycleStats aggregates resolved prefetch lifecycles. One instance
// exists per (prefetcher, cache level) and per (prefetcher, 4KB
// region); Total sums across levels.
type LifecycleStats struct {
	Issued    uint64 // admitted into the hierarchy
	Timely    uint64
	Late      uint64
	Useless   uint64
	Redundant uint64 // dropped at issue: already present or in flight

	SlackSum    uint64 // Σ (use − fill) over timely prefetches
	LatenessSum uint64 // Σ (fill − use) over late prefetches
}

// add accumulates o into s.
func (s *LifecycleStats) add(o LifecycleStats) {
	s.Issued += o.Issued
	s.Timely += o.Timely
	s.Late += o.Late
	s.Useless += o.Useless
	s.Redundant += o.Redundant
	s.SlackSum += o.SlackSum
	s.LatenessSum += o.LatenessSum
}

// Used returns the number of prefetches that saw a demand use.
func (s LifecycleStats) Used() uint64 { return s.Timely + s.Late }

// Resolved returns the number of lifecycles with a final classification
// (excluding redundant drops, which never entered the hierarchy).
func (s LifecycleStats) Resolved() uint64 { return s.Timely + s.Late + s.Useless }

// Accuracy returns used/(used+useless), or 0 before any resolution.
func (s LifecycleStats) Accuracy() float64 {
	if s.Resolved() == 0 {
		return 0
	}
	return float64(s.Used()) / float64(s.Resolved())
}

// TimelyFraction returns timely/used, or 0 when nothing was used.
func (s LifecycleStats) TimelyFraction() float64 {
	if s.Used() == 0 {
		return 0
	}
	return float64(s.Timely) / float64(s.Used())
}

// AvgSlack returns the mean fill-to-use slack in cycles over timely
// prefetches — how much margin the prefetcher had.
func (s LifecycleStats) AvgSlack() float64 {
	if s.Timely == 0 {
		return 0
	}
	return float64(s.SlackSum) / float64(s.Timely)
}

// AvgLateness returns the mean use-to-fill wait in cycles over late
// prefetches — how much latency the demand still paid.
func (s LifecycleStats) AvgLateness() float64 {
	if s.Late == 0 {
		return 0
	}
	return float64(s.LatenessSum) / float64(s.Late)
}

// Coverage returns used/(used+demandMisses): the fraction of would-be
// misses the prefetcher covered, given the demand misses observed at
// the same level over the same window.
func (s LifecycleStats) Coverage(demandMisses uint64) float64 {
	if s.Used()+demandMisses == 0 {
		return 0
	}
	return float64(s.Used()) / float64(s.Used()+demandMisses)
}

// RegionLifecycle is the per-4KB-region aggregate.
type RegionLifecycle struct {
	Region mem.Addr // region base address
	Stats  LifecycleStats
}

// LifecycleSnapshot is the Stats-style view of one prefetcher's
// lifecycle tracking: totals, per cache level, and per 4KB region.
type LifecycleSnapshot struct {
	Prefetcher string
	Total      LifecycleStats
	PerLevel   [4]LifecycleStats // indexed by prefetch.Level
	Regions    []RegionLifecycle // sorted by issued count, descending
	Open       uint64            // issued but unresolved at snapshot time
}

// AggregateLifecycle sums snapshots (e.g. per-core multicore results)
// into one combined view labelled "all". Region aggregates merge by
// region base; Open counts add.
func AggregateLifecycle(snaps []LifecycleSnapshot) LifecycleSnapshot {
	out := LifecycleSnapshot{Prefetcher: "all"}
	regions := map[mem.Addr]*LifecycleStats{}
	for _, sn := range snaps {
		out.Total.add(sn.Total)
		for lv := range sn.PerLevel {
			out.PerLevel[lv].add(sn.PerLevel[lv])
		}
		out.Open += sn.Open
		for _, r := range sn.Regions {
			st := regions[r.Region]
			if st == nil {
				st = &LifecycleStats{}
				regions[r.Region] = st
			}
			st.add(r.Stats)
		}
	}
	out.Regions = sortedRegions(regions)
	return out
}

func sortedRegions(regions map[mem.Addr]*LifecycleStats) []RegionLifecycle {
	out := make([]RegionLifecycle, 0, len(regions))
	for base, st := range regions {
		out = append(out, RegionLifecycle{Region: base, Stats: *st})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stats.Issued != out[j].Stats.Issued {
			return out[i].Stats.Issued > out[j].Stats.Issued
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// lifecycleKey identifies an outstanding lifecycle: the target level
// disambiguates the same line prefetched into different caches.
type lifecycleKey struct {
	level prefetch.Level
	line  mem.Addr
}

// lifecycleRecord is one in-flight lifecycle between issue and
// resolution.
type lifecycleRecord struct {
	src    string // issuing prefetcher name
	issue  uint64
	fill   uint64
	filled bool
}

// lifecycleAgg accumulates resolved lifecycles for one prefetcher.
type lifecycleAgg struct {
	perLevel [4]LifecycleStats
	regions  map[mem.Addr]*LifecycleStats
}

// lifecycleTracker correlates issue records from the simulator with
// fill/use/death events from the caches and aggregates the outcome per
// prefetcher, per cache level and per 4KB region. It is created only
// when lifecycle tracing is enabled, so the untraced hot path carries a
// single nil check.
type lifecycleTracker struct {
	seq      uint64
	sink     func(LifecycleEvent) // optional JSONL-style event sink
	open     map[lifecycleKey]lifecycleRecord
	bySource map[string]*lifecycleAgg
}

func newLifecycleTracker(sink func(LifecycleEvent)) *lifecycleTracker {
	return &lifecycleTracker{
		sink:     sink,
		open:     make(map[lifecycleKey]lifecycleRecord),
		bySource: make(map[string]*lifecycleAgg),
	}
}

func (t *lifecycleTracker) agg(src string) *lifecycleAgg {
	a := t.bySource[src]
	if a == nil {
		//pmp:allocok lazy once-per-prefetcher aggregate; the tracker is nil on the benchmarked path
		a = &lifecycleAgg{regions: map[mem.Addr]*LifecycleStats{}}
		t.bySource[src] = a
	}
	return a
}

func (t *lifecycleTracker) region(a *lifecycleAgg, line mem.Addr) *LifecycleStats {
	base := line.Page()
	st := a.regions[base]
	if st == nil {
		st = &LifecycleStats{}
		a.regions[base] = st
	}
	return st
}

// issued records an admitted prefetch request.
func (t *lifecycleTracker) issued(src string, level prefetch.Level, line mem.Addr, now uint64) {
	t.open[lifecycleKey{level, line}] = lifecycleRecord{src: src, issue: now}
	a := t.agg(src)
	a.perLevel[level].Issued++
	t.region(a, line).Issued++
}

// redundant records a request dropped at issue because its line was
// already present or in flight: resolved immediately.
func (t *lifecycleTracker) redundant(src string, level prefetch.Level, line mem.Addr, now uint64) {
	a := t.agg(src)
	a.perLevel[level].Redundant++
	t.region(a, line).Redundant++
	t.emit(src, level, line, lifecycleRecord{src: src, issue: now}, LifecycleRedundant, 0)
}

// cacheHook returns the cache.PrefetchTrace callback for one level.
func (t *lifecycleTracker) cacheHook(level prefetch.Level) func(cache.PrefetchEvent) {
	return func(ev cache.PrefetchEvent) {
		key := lifecycleKey{level, ev.Line}
		rec, ok := t.open[key]
		if !ok {
			// Untracked: an inclusive fill below the request's target
			// level, or a lifecycle discarded at a stats reset.
			return
		}
		switch ev.Kind {
		case cache.PrefetchFilled:
			rec.fill, rec.filled = ev.Cycle, true
			t.open[key] = rec
		case cache.PrefetchUsed:
			rec.fill, rec.filled = ev.FillCycle, true
			class := LifecycleTimely
			if ev.Late {
				class = LifecycleLate
			}
			t.resolve(key, rec, class, ev.Cycle)
		case cache.PrefetchDead:
			t.resolve(key, rec, LifecycleUseless, ev.Cycle)
		}
	}
}

// resolve finalizes an outstanding lifecycle.
func (t *lifecycleTracker) resolve(key lifecycleKey, rec lifecycleRecord, class LifecycleClass, use uint64) {
	delete(t.open, key)
	a := t.agg(rec.src)
	for _, st := range []*LifecycleStats{&a.perLevel[key.level], t.region(a, key.line)} {
		switch class {
		case LifecycleTimely:
			st.Timely++
			if use >= rec.fill {
				st.SlackSum += use - rec.fill
			}
		case LifecycleLate:
			st.Late++
			if rec.fill >= use {
				st.LatenessSum += rec.fill - use
			}
		case LifecycleUseless:
			st.Useless++
		}
	}
	t.emit(rec.src, key.level, key.line, rec, class, use)
}

func (t *lifecycleTracker) emit(src string, level prefetch.Level, line mem.Addr, rec lifecycleRecord, class LifecycleClass, use uint64) {
	if t.sink == nil {
		return
	}
	t.seq++
	ev := LifecycleEvent{
		Seq:        t.seq,
		Prefetcher: src,
		Level:      level.String(),
		Line:       uint64(line),
		Region:     uint64(line.Page()),
		Issue:      rec.issue,
		Class:      class.String(),
	}
	if rec.filled {
		ev.Fill = rec.fill
	}
	if class == LifecycleTimely || class == LifecycleLate {
		ev.Use = use
	}
	t.sink(ev)
}

// flushOpen exports every unresolved lifecycle to the sink (end of a
// run) without mutating the aggregates. Keys are sorted so the event
// stream is byte-identical across runs regardless of map layout.
func (t *lifecycleTracker) flushOpen() {
	if t.sink == nil {
		return
	}
	keys := make([]lifecycleKey, 0, len(t.open))
	for key := range t.open {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].line < keys[j].line
	})
	for _, key := range keys {
		t.emit(t.open[key].src, key.level, key.line, t.open[key], LifecycleOpen, 0)
	}
}

// reset discards aggregates and outstanding records (warm-up boundary).
func (t *lifecycleTracker) reset() {
	clear(t.open)
	clear(t.bySource)
}

// snapshots returns one LifecycleSnapshot per observed prefetcher,
// sorted by name. Open lifecycles are attributed to their issuer.
func (t *lifecycleTracker) snapshots() []LifecycleSnapshot {
	openBySrc := map[string]uint64{}
	for _, rec := range t.open {
		openBySrc[rec.src]++
	}
	names := make([]string, 0, len(t.bySource))
	for name := range t.bySource {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]LifecycleSnapshot, 0, len(names))
	for _, name := range names {
		a := t.bySource[name]
		sn := LifecycleSnapshot{Prefetcher: name, Open: openBySrc[name]}
		for lv := range a.perLevel {
			sn.PerLevel[lv] = a.perLevel[lv]
			sn.Total.add(a.perLevel[lv])
		}
		sn.Regions = sortedRegions(a.regions)
		out = append(out, sn)
	}
	return out
}
