package sim

import (
	"testing"

	"pmp/internal/core"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/trace"
)

// recorder wraps Nop and records the feedback the system delivers.
type recorder struct {
	prefetch.Nop
	reqs    []prefetch.Request
	fills   map[mem.Addr]bool // line -> useful
	evicted []mem.Addr
}

func (r *recorder) Issue(max int) []prefetch.Request {
	if max <= 0 || len(r.reqs) == 0 {
		return nil
	}
	n := min(max, len(r.reqs))
	out := r.reqs[:n]
	r.reqs = r.reqs[n:]
	return out
}

func (r *recorder) OnFill(line mem.Addr, _ prefetch.Level, useful bool) {
	if r.fills == nil {
		r.fills = map[mem.Addr]bool{}
	}
	r.fills[line] = useful
}

func (r *recorder) OnEvict(line mem.Addr) { r.evicted = append(r.evicted, line) }

// TestPrefetchFeedbackDelivered checks the OnFill wiring: a prefetched
// line that is later demanded reports useful=true.
func TestPrefetchFeedbackDelivered(t *testing.T) {
	cfg := quickConfig()
	cfg.Warmup = 0
	rec := &recorder{}
	s := NewSystem(cfg, rec)

	target := mem.Addr(0x100000)
	rec.reqs = []prefetch.Request{{Addr: target, Level: prefetch.LevelL1}}
	// First access triggers Issue (after Train); second access demands
	// the prefetched line.
	recs := []trace.Record{
		{PC: 1, Addr: 0x200000},
		{PC: 1, Addr: target},
	}
	s.Run(trace.NewTrace("t", recs))
	useful, ok := rec.fills[target.Line()]
	if !ok {
		t.Fatal("no feedback for the prefetched line")
	}
	if !useful {
		t.Error("demanded prefetch should be reported useful")
	}
}

// TestInclusionMaintained checks that LLC evictions back-invalidate the
// upper levels: after a run, no L1D-resident line may be missing from
// the LLC.
func TestInclusionMaintained(t *testing.T) {
	cfg := quickConfig()
	// Tiny LLC forces constant back-invalidation.
	cfg.LLC.Sets = 512
	cfg.L2C.Sets = 256
	s := NewSystem(cfg, core.New(core.DefaultConfig()))
	src := trace.NewPointerChase("c", 5, 30_000, trace.DefaultPointerChaseParams())
	s.Run(src)

	// Probe a sample of recently accessed lines: anything in L1D must
	// be in the LLC (inclusive hierarchy).
	src.Reset()
	c := s.Machine().Core(0)
	l1d, llc := c.CacheAt(0), c.CacheAt(s.Machine().Levels()-1)
	violations := 0
	for i := 0; i < 5000; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		line := r.Addr.Line()
		if l1d.Contains(line) && !llc.Contains(line) {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d lines resident in L1D but not LLC (inclusion broken)", violations)
	}
}

// TestEvictionsReachPrefetcher checks the SMS-closing eviction path.
func TestEvictionsReachPrefetcher(t *testing.T) {
	cfg := quickConfig()
	cfg.Warmup = 0
	rec := &recorder{}
	s := NewSystem(cfg, rec)
	// Touch far more lines than L1D holds: evictions must flow.
	var recs []trace.Record
	for i := 0; i < 4096; i++ {
		recs = append(recs, trace.Record{PC: 1, Addr: mem.Addr(i * mem.LineBytes)})
	}
	s.Run(trace.NewTrace("t", recs))
	if len(rec.evicted) == 0 {
		t.Error("no evictions delivered to the prefetcher")
	}
}

// TestPMPLimitReducesTraffic checks the PMP-Limit knob end to end.
func TestPMPLimitReducesTraffic(t *testing.T) {
	mk := func(degree int) uint64 {
		cfg := core.DefaultConfig()
		cfg.LowLevelDegree = degree
		src := trace.NewGraph("g", 3, 60_000, trace.DefaultGraphParams())
		res := NewSystem(quickConfig(), core.New(cfg)).Run(src)
		return res.DRAM.PrefetchRequests
	}
	full, limited := mk(0), mk(1)
	if limited >= full {
		t.Errorf("PMP-Limit traffic (%d) should undercut full PMP (%d)", limited, full)
	}
}

// TestDependentLoadsSerialize checks the DepChain model: a dependent
// pointer chase runs far slower than the same addresses independent.
func TestDependentLoadsSerialize(t *testing.T) {
	mkTrace := func(dep trace.DepKind) trace.Source {
		var recs []trace.Record
		for i := 0; i < 20_000; i++ {
			// Large-stride walk that always misses.
			recs = append(recs, trace.Record{
				PC:   0x42,
				Addr: mem.Addr(uint64(i) * 131 * mem.LineBytes % (1 << 30)),
				Gap:  4,
				Dep:  dep,
			})
		}
		return trace.NewTrace("d", recs)
	}
	cfg := quickConfig()
	cfg.Warmup = 0
	indep := NewSystem(cfg, prefetch.Nop{}).Run(mkTrace(trace.DepNone))
	chained := NewSystem(cfg, prefetch.Nop{}).Run(mkTrace(trace.DepChain))
	if chained.IPC() > indep.IPC()/3 {
		t.Errorf("dependent chase IPC %.3f should be far below independent %.3f",
			chained.IPC(), indep.IPC())
	}
}

// TestDepPrevWaitsOnPreviousLoad checks the DepPrev model.
func TestDepPrevWaitsOnPreviousLoad(t *testing.T) {
	cfg := quickConfig()
	cfg.Warmup = 0
	// Alternate PCs; DepPrev must serialize across PCs while DepChain
	// would not.
	mk := func(dep trace.DepKind) trace.Source {
		var recs []trace.Record
		for i := 0; i < 10_000; i++ {
			recs = append(recs, trace.Record{
				PC:   uint64(0x10 + i%2*64), // two alternating chains
				Addr: mem.Addr(uint64(i) * 131 * mem.LineBytes % (1 << 30)),
				Gap:  4,
				Dep:  dep,
			})
		}
		return trace.NewTrace("d", recs)
	}
	prev := NewSystem(cfg, prefetch.Nop{}).Run(mk(trace.DepPrev))
	chain := NewSystem(cfg, prefetch.Nop{}).Run(mk(trace.DepChain))
	// Program-order dependence serializes everything; per-PC chains
	// overlap the two walkers, so DepChain must be faster.
	if chain.IPC() <= prev.IPC()*1.5 {
		t.Errorf("two DepChain walkers (IPC %.3f) should clearly beat DepPrev (%.3f)",
			chain.IPC(), prev.IPC())
	}
}
