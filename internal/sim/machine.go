package sim

import (
	"fmt"

	"pmp/internal/cache"
	"pmp/internal/cpu"
	"pmp/internal/dram"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/tlb"
	"pmp/internal/trace"
)

// level is one cache level of the hierarchy as seen by one core: the
// cache itself (core-private, or a pointer to the machine-shared
// instance), its timing, the per-core prefetch-queue tracker and the
// optional level-attached prefetcher.
type level struct {
	cache     *cache.Cache
	latency   uint64
	pqSize    int
	shared    bool
	inclusive bool
	pfLevel   prefetch.Level // prefetch.Level label for stats/feedback

	// pq bounds this core's short-term prefetch issue rate into the
	// level. An entry is occupied from issue until the cache accepts
	// the request (one access latency), so the PQ bounds the issue
	// rate while the MSHRs bound in-flight depth — ChampSim's
	// structure. Shared caches still have one PQ per core.
	pq pqTracker

	// attached, when non-nil, is a prefetcher attached at this level:
	// it trains on the demand accesses that reach the level and its
	// requests fill this level only — the placement the paper's §V-B
	// uses for "original Bingo at LLC", generalized to any depth.
	// attachBuf is its reused issue scratch buffer.
	attached  prefetch.Prefetcher
	attachBuf []prefetch.Request
}

// Core is one simulated core: a CPU window model, a TLB, the full view
// of the cache hierarchy (private levels owned, shared levels
// referenced) and the core's trained prefetcher.
type Core struct {
	m     *Machine
	index uint64 // interleaves DRAM channels across cores
	cpu   *cpu.Core
	dtlb  *tlb.TLB
	pf    prefetch.Prefetcher

	levels []level

	pfStats PrefetchIssueStats
	statsOn bool

	// lt, when non-nil, tracks every prefetch request from issue to
	// resolution (timely/late/useless/redundant). Nil keeps the hot
	// path free of tracing work.
	lt *lifecycleTracker

	// Dependency tracking: prevDone is the completion cycle of the
	// immediately preceding load; chainDone tracks completions per
	// (hashed) PC. Pointer chases serialize on their own chain while
	// independent walkers keep their memory-level parallelism.
	prevDone  uint64
	chainDone [64]uint64

	// issueBuf is the scratch buffer reused by the primary issue path
	// so a steady-state access allocates nothing (see
	// prefetch.BulkIssuer). Level-attached prefetchers drain through
	// their own level.attachBuf — separate because an attached drain
	// can run while a demand access is still between lookup and issue.
	issueBuf []prefetch.Request
}

// Machine is an N-core simulated machine over an N-level cache
// hierarchy. Private levels are instantiated per core; shared levels
// (the hierarchy's suffix, typically just the LLC) and the DRAM
// channels are instantiated once. System and Multicore are thin
// wrappers over it.
type Machine struct {
	cfg    Config
	specs  []LevelSpec
	shared []*cache.Cache // per hierarchy level; nil for private levels
	mem    *dram.DRAM
	cores  []*Core

	// replay re-runs a trace from the start when it ends before its
	// core's measurement window does (ChampSim's multi-programmed-mix
	// convention). NewMulticore enables it; NewSystem does not.
	replay bool
}

// NewMachine builds a machine with one core per prefetcher over the
// configured hierarchy; it panics on invalid configuration. Pass
// prefetch.Nop{} entries for non-prefetching cores.
func NewMachine(cfg Config, prefetchers []prefetch.Prefetcher) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(prefetchers) == 0 {
		panic("sim: machine needs at least one prefetcher")
	}
	specs := cfg.hierarchy()
	m := &Machine{
		cfg:    cfg,
		specs:  specs,
		shared: make([]*cache.Cache, len(specs)),
		mem:    dram.New(cfg.DRAM),
	}
	for j, sp := range specs {
		if sp.Shared {
			m.shared[j] = cache.New(sp.Cache)
		}
	}
	for i, pf := range prefetchers {
		c := &Core{
			m:      m,
			index:  uint64(i),
			cpu:    cpu.New(cfg.Core),
			dtlb:   tlb.New(cfg.TLB),
			pf:     pf,
			levels: make([]level, len(specs)),
		}
		for j, sp := range specs {
			cc := m.shared[j]
			if cc == nil {
				cc = cache.New(sp.Cache)
			}
			c.levels[j] = level{
				cache:     cc,
				latency:   sp.Cache.Latency,
				pqSize:    sp.Cache.PQSize,
				shared:    sp.Shared,
				inclusive: sp.Inclusive,
				pfLevel:   pfLevelFor(j, len(specs)),
				pq:        newPQTracker(sp.Cache.PQSize),
			}
		}
		c.issueBuf = make([]prefetch.Request, 0, max(specs[0].Cache.PQSize, 1))
		c.wireFeedback()
		m.cores = append(m.cores, c)
	}
	return m
}

// pfLevelFor maps a hierarchy index to the prefetch.Level label used
// for request targeting, per-level statistics and prefetcher feedback:
// the innermost level is LevelL1, the outermost LevelLLC, and every
// level between maps to LevelL2.
func pfLevelFor(idx, n int) prefetch.Level {
	switch {
	case idx == 0:
		return prefetch.LevelL1
	case idx == n-1:
		return prefetch.LevelLLC
	default:
		return prefetch.LevelL2
	}
}

// levelIndex maps a request's target prefetch.Level to a hierarchy
// index (the inverse of pfLevelFor): LevelL1 is the innermost level,
// LevelLLC the outermost, LevelL2 the second level when the hierarchy
// has a middle and the outermost otherwise. It reports false for
// LevelNone and unknown levels (such requests are silently admitted
// and dropped, as before).
func (c *Core) levelIndex(l prefetch.Level) (int, bool) {
	switch l {
	case prefetch.LevelL1:
		return 0, true
	case prefetch.LevelL2:
		if len(c.levels) >= 3 {
			return 1, true
		}
		return len(c.levels) - 1, true
	case prefetch.LevelLLC:
		return len(c.levels) - 1, true
	default:
		return 0, false
	}
}

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns the i-th core.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Levels returns the number of cache levels in the hierarchy.
func (m *Machine) Levels() int { return len(m.specs) }

// SetTraceReplay controls whether Run replays a trace from the start
// when it ends before the core's measurement window does (bounded by
// Config.MaxTraceWraps). NewMulticore enables it; NewSystem leaves it
// off so a single-core run ends with its trace.
func (m *Machine) SetTraceReplay(on bool) { m.replay = on }

// Prefetcher returns the core's trained (innermost-level) prefetcher.
func (c *Core) Prefetcher() prefetch.Prefetcher { return c.pf }

// CacheAt returns the cache at hierarchy level idx (0 = innermost).
// Shared levels return the machine-wide instance.
func (c *Core) CacheAt(idx int) *cache.Cache { return c.levels[idx].cache }

// AttachPrefetcher installs a prefetcher at hierarchy level idx
// (1 ≤ idx < Levels; the innermost level's prefetcher is the one the
// core was constructed with). It observes the demand accesses that
// reach the level (with the PC of the originating load), fills that
// level only, and is notified of the level's evictions. Call before
// Run.
func (c *Core) AttachPrefetcher(idx int, pf prefetch.Prefetcher) {
	if idx <= 0 || idx >= len(c.levels) {
		panic(fmt.Sprintf("sim: attach level %d out of range [1, %d]", idx, len(c.levels)-1))
	}
	lv := &c.levels[idx]
	lv.attached = pf
	lv.attachBuf = make([]prefetch.Request, 0, max(lv.pqSize, 1))
}

// wireFeedback routes prefetched-line outcomes back to the core's
// prefetcher (SPP+PPF and Pythia learn from them). Every core wires
// every level, so on shared caches the last core's hook wins — the
// behaviour the 4-core system has always had.
func (c *Core) wireFeedback() {
	for j := range c.levels {
		lv := &c.levels[j]
		pfLevel := lv.pfLevel
		lv.cache.PrefetchOutcome = func(line mem.Addr, useful bool) {
			c.pf.OnFill(line, pfLevel, useful)
		}
	}
}

// EnableLifecycleTracing turns on per-request prefetch lifecycle
// tracking on every core: each prefetch is followed from issue through
// fill to its first demand use (or untouched death) and classified as
// timely, late, useless or redundant, aggregated per prefetcher, per
// cache level and per 4KB region. Shared levels fan their lifecycle
// events out to every core's tracker; each tracker resolves only the
// requests it issued, so per-core snapshots stay attributable. When
// two cores race a prefetch for the same shared line, both lifecycles
// resolve on the same event — a small over-count that keeps the
// trackers independent. The optional sink receives one LifecycleEvent
// per resolved request (pass nil to keep aggregates only) and is
// shared by all cores. Call before Run; each Result then carries its
// core's snapshots.
func (m *Machine) EnableLifecycleTracing(sink func(LifecycleEvent)) {
	for _, c := range m.cores {
		c.lt = newLifecycleTracker(sink)
		for j := range c.levels {
			if c.levels[j].shared {
				continue
			}
			c.levels[j].cache.PrefetchTrace = c.lt.cacheHook(c.levels[j].pfLevel)
		}
	}
	for j, cc := range m.shared {
		if cc == nil {
			continue
		}
		pfLevel := pfLevelFor(j, len(m.specs))
		hooks := make([]func(cache.PrefetchEvent), len(m.cores))
		for i, c := range m.cores {
			hooks[i] = c.lt.cacheHook(pfLevel)
		}
		cc.PrefetchTrace = func(ev cache.PrefetchEvent) {
			for _, h := range hooks {
				h(ev)
			}
		}
	}
}

// LifecycleSnapshots returns the core's current per-prefetcher
// lifecycle aggregates (nil when tracing is off). Run also stores
// them in the core's Result.
func (c *Core) LifecycleSnapshots() []LifecycleSnapshot {
	if c.lt == nil {
		return nil
	}
	return c.lt.snapshots()
}

// --- statistics windows ---

// enableStats switches demand/traffic accounting on every structure.
func (m *Machine) enableStats(on bool) {
	for _, c := range m.cores {
		for j := range c.levels {
			if !c.levels[j].shared {
				c.levels[j].cache.EnableStats(on)
			}
		}
		c.dtlb.EnableStats(on)
	}
	for _, cc := range m.shared {
		if cc != nil {
			cc.EnableStats(on)
		}
	}
	m.mem.EnableStats(on)
}

// resetPrivateStats zeroes one core's private-structure counters (its
// warm-up boundary). Shared levels reset once, via resetSharedStats,
// when the last core leaves warm-up.
func (c *Core) resetPrivateStats() {
	for j := range c.levels {
		if !c.levels[j].shared {
			c.levels[j].cache.ResetStats()
		}
	}
	c.dtlb.ResetStats()
	c.pfStats = PrefetchIssueStats{}
	if c.lt != nil {
		c.lt.reset()
	}
}

// resetSharedStats zeroes the shared levels and the DRAM counters.
func (m *Machine) resetSharedStats() {
	for _, cc := range m.shared {
		if cc != nil {
			cc.ResetStats()
		}
	}
	m.mem.ResetStats()
}

// coreState tracks one core's progress through Run.
type coreState struct {
	src        trace.Source
	warm       bool
	finished   bool
	startCycle uint64
	startInstr uint64
	wraps      int
}

// Run replays one trace per core, interleaved by simulated time (the
// core furthest behind in cycles steps next), and returns per-core
// results. The first cfg.Warmup instructions of each core run outside
// the measurement window; measurement then covers cfg.Measure
// instructions (or the rest of the trace if 0).
//
// Statistics are enabled from cycle 0 and reset at each core's
// warm-up boundary (shared structures when the last core warms), so a
// trace that ends before cfg.Warmup still yields a Result whose
// cache/DRAM/TLB statistics cover the whole run instead of reading
// all-zero.
//
// With trace replay enabled (NewMulticore), traces that end before a
// core finishes its measurement window are replayed from the start,
// as ChampSim does for multi-programmed mixes, bounded by
// cfg.MaxTraceWraps; cfg.Measure must be > 0 in that mode.
func (m *Machine) Run(traces []trace.Source) []Result {
	if len(traces) != len(m.cores) {
		panic(fmt.Sprintf("sim: %d traces for %d cores", len(traces), len(m.cores)))
	}
	if m.replay && m.cfg.Measure == 0 {
		panic("sim: trace-replay (multicore) runs need cfg.Measure > 0")
	}
	maxWraps := m.cfg.MaxTraceWraps
	if maxWraps == 0 {
		maxWraps = DefaultMaxTraceWraps
	}
	states := make([]coreState, len(m.cores))
	for i, src := range traces {
		src.Reset()
		states[i] = coreState{src: src}
	}
	m.enableStats(true)
	for _, c := range m.cores {
		c.statsOn = false
		c.resetPrivateStats()
	}
	m.resetSharedStats()
	warmed := 0

	for {
		// Step the laggard unfinished core to keep simulated time aligned.
		idx := -1
		var minCycle uint64
		for i := range states {
			if states[i].finished {
				continue
			}
			cyc := m.cores[i].cpu.Cycle()
			if idx == -1 || cyc < minCycle {
				idx, minCycle = i, cyc
			}
		}
		if idx == -1 {
			break
		}
		c, st := m.cores[idx], &states[idx]

		r, ok := st.src.Next()
		if !ok {
			if !m.replay {
				st.finished = true
				continue
			}
			st.src.Reset()
			st.wraps++
			if r, ok = st.src.Next(); !ok || st.wraps > maxWraps {
				st.finished = true
				continue
			}
		}
		if !st.warm && c.cpu.Dispatched() >= m.cfg.Warmup {
			st.warm = true
			c.resetPrivateStats()
			c.statsOn = true
			st.startCycle = c.cpu.Cycle()
			st.startInstr = c.cpu.Dispatched()
			warmed++
			if warmed == len(m.cores) {
				m.resetSharedStats()
			}
		}
		if st.warm && m.cfg.Measure > 0 && c.cpu.Dispatched()-st.startInstr >= m.cfg.Measure {
			st.finished = true
			continue
		}
		c.step(r)
	}

	results := make([]Result, len(m.cores))
	for i, c := range m.cores {
		st := &states[i]
		end := c.cpu.Drain()
		var cycles uint64
		if end >= st.startCycle {
			cycles = end - st.startCycle
		}
		var lifecycle []LifecycleSnapshot
		if c.lt != nil {
			c.lt.flushOpen()
			lifecycle = c.lt.snapshots()
		}
		results[i] = Result{
			Trace:        st.src.Name(),
			Prefetcher:   c.pf.Name(),
			Instructions: c.cpu.Dispatched() - st.startInstr,
			Cycles:       cycles,
			L1D:          c.levels[0].cache.Stats(),
			L2C:          c.midStats(),
			LLC:          c.levels[len(c.levels)-1].cache.Stats(),
			DRAM:         m.mem.Stats(),
			TLB:          c.dtlb.Stats(),
			PF:           c.pfStats,
			Lifecycle:    lifecycle,
		}
	}
	return results
}

// midStats fills the legacy Result.L2C slot: the stats of level 1 for
// hierarchies of three or more levels, zero for a 2-level hierarchy
// (which has no L2C).
func (c *Core) midStats() cache.Stats {
	if len(c.levels) >= 3 {
		return c.levels[1].cache.Stats()
	}
	return cache.Stats{}
}

// --- the per-access pipeline ---

// step dispatches one trace record: its leading non-memory instructions
// and the load itself. Address-dependent loads wait for the previous
// load's data before issuing to the memory hierarchy.
//
//pmp:hotpath
func (c *Core) step(r trace.Record) {
	if r.Gap > 0 {
		c.cpu.DispatchNonLoads(int(r.Gap))
	}
	//pmp:allocok closure does not escape DispatchLoad and stays on the stack; BenchmarkSystemStep pins 0 allocs/access
	c.cpu.DispatchLoad(func(issue uint64) uint64 {
		chain := mem.HashPC(r.PC, 6)
		switch r.Dep {
		case trace.DepPrev:
			if c.prevDone > issue {
				issue = c.prevDone
			}
		case trace.DepChain:
			if c.chainDone[chain] > issue {
				issue = c.chainDone[chain]
			}
		}
		done := c.demandAccess(r.PC, r.Addr, issue)
		c.chainDone[chain] = done
		c.prevDone = done
		return done
	})
}

// demandAccess services a demand load, trains the prefetcher, and lets
// it issue; it returns the data-ready cycle. Address translation
// happens first: TLB misses delay the cache access.
//
//pmp:hotpath
func (c *Core) demandAccess(pc uint64, addr mem.Addr, now uint64) uint64 {
	now += c.dtlb.Translate(addr)
	line := addr.Line()
	done, hit := c.lookupTop(line, now, pc)
	c.pf.Train(prefetch.Access{PC: pc, Addr: addr, Cycle: now, Hit: hit})
	c.issuePrefetches(now)
	return done
}

// lookupTop performs the demand path at the innermost level, walking
// the outer hierarchy on a miss. Unlike the outer levels, a demand
// miss here stalls (rather than drops) when the MSHR file is full.
func (c *Core) lookupTop(line mem.Addr, now uint64, pc uint64) (uint64, bool) {
	top := &c.levels[0]
	if hit, ready := top.cache.Lookup(line, now, true); hit {
		return ready, true
	}
	if done, ok := top.cache.InFlight(line, now); ok {
		return done, false // merged onto an outstanding miss
	}
	t := now
	for !top.cache.ReserveMSHR(line, t, t+1, true) {
		next, ok := top.cache.EarliestCompletion(t)
		if !ok {
			break
		}
		t = next
	}
	done := c.fetch(1, line, t+top.latency, true, false, pc)
	top.cache.ReserveMSHR(line, t, done, true) // update the reserved completion
	c.fill(0, line, done, false)
	return done, false
}

// fetch returns the cycle the line is available from hierarchy level
// idx, walking outward (and to DRAM past the last level) on misses.
// demand marks demand-initiated walks for the stats; pf marks
// prefetch-initiated fills; pc is the originating load's PC for
// level-attached prefetcher training (0 on prefetch walks).
func (c *Core) fetch(idx int, line mem.Addr, t uint64, demand, pf bool, pc uint64) uint64 {
	if idx == len(c.levels) {
		return c.m.mem.Access(line.LineID()+c.index, t, demand)
	}
	lv := &c.levels[idx]
	if demand && lv.attached != nil {
		defer c.issueAttached(idx, t)
	}
	if hit, ready := lv.cache.Lookup(line, t, demand); hit {
		if demand && lv.attached != nil {
			lv.attached.Train(prefetch.Access{PC: pc, Addr: line, Cycle: t, Hit: true})
		}
		return ready
	}
	if done, ok := lv.cache.InFlight(line, t); ok {
		return done
	}
	if demand && lv.attached != nil {
		lv.attached.Train(prefetch.Access{PC: pc, Addr: line, Cycle: t, Hit: false})
	}
	done := c.fetch(idx+1, line, t+lv.latency, demand, pf, pc)
	lv.cache.ReserveMSHR(line, t, done, demand)
	c.fill(idx, line, done, pf)
	return done
}

// fill inserts a line at hierarchy level idx. Clean evictions close
// the loop with the prefetchers (the innermost level's eviction feeds
// SMS-style accumulation) and, at inclusive levels, back-invalidate
// the inner levels of every core sharing the evicting cache.
func (c *Core) fill(idx int, line mem.Addr, ready uint64, pf bool) {
	lv := &c.levels[idx]
	ev := lv.cache.Fill(line, ready, pf)
	if ev.Kind != cache.EvictClean {
		return
	}
	if idx == 0 {
		c.pf.OnEvict(ev.Line)
	}
	if lv.inclusive {
		c.m.backInvalidate(idx, ev.Line)
	}
	if lv.attached != nil {
		lv.attached.OnEvict(ev.Line)
	}
}

// backInvalidate removes a line displaced at level idx from every
// inner level (inclusive hierarchy). Shared inner levels are
// invalidated once; private inner levels in every core that shares
// the evicting level.
func (m *Machine) backInvalidate(idx int, line mem.Addr) {
	for j := idx - 1; j > 0; j-- {
		if m.shared[j] != nil {
			m.shared[j].Invalidate(line)
		}
	}
	for _, c := range m.cores {
		c.invalidateInner(idx, line)
	}
}

// invalidateInner removes the line from this core's private levels
// inside idx, outermost first; an innermost-level invalidation is
// reported to the core's prefetcher as an eviction.
func (c *Core) invalidateInner(idx int, line mem.Addr) {
	for j := idx - 1; j > 0; j-- {
		if c.levels[j].shared {
			continue
		}
		c.levels[j].cache.Invalidate(line)
	}
	if idx > 0 {
		if c.levels[0].cache.Invalidate(line) {
			c.pf.OnEvict(line)
		}
	}
}

// --- prefetch issue ---

// pqTracker bounds in-flight prefetches at one level. minDone caches a
// lower bound on the occupied entries' completion cycles so the common
// probe — nothing has completed since the last one — answers without
// scanning (the same trick as the MSHR file's prune fast path).
type pqTracker struct {
	done    []uint64 // completion cycles of occupied entries
	minDone uint64   // lower bound on min(done); ^0 when empty
}

func newPQTracker(capacity int) pqTracker {
	return pqTracker{done: make([]uint64, 0, capacity), minDone: ^uint64(0)}
}

// free reports whether an entry is available at `now`, pruning
// completed entries.
//
//pmp:hotpath
func (p *pqTracker) free(now uint64) bool {
	if p.minDone > now {
		return len(p.done) < cap(p.done)
	}
	live := p.done[:0]
	minDone := ^uint64(0)
	for _, d := range p.done {
		if d > now {
			live = append(live, d)
			minDone = min(minDone, d)
		}
	}
	p.done = live
	p.minDone = minDone
	return len(p.done) < cap(p.done)
}

// add records one in-flight prefetch. Gated by free(), so the append
// never outgrows the capacity newPQTracker reserved.
func (p *pqTracker) add(done uint64) {
	//pmp:allocok bounded by preallocated capacity; add is only reached after free() reports len < cap
	p.done = append(p.done, done)
	p.minDone = min(p.minDone, done)
}

// prefetchRoom reports whether the cache can accept a prefetch without
// consuming its demand-reserved MSHR.
func prefetchRoom(c *cache.Cache, now uint64) bool {
	return c.MSHRBusy(now) < c.Config().MSHRs-1
}

// issuePrefetches drains the core's prefetcher into the hierarchy,
// bounded by the innermost level's prefetch queue size per demand
// access.
//
// Prefetchers that support requeueing get the paper's PB
// suspend/resume semantics: unadmitted requests go back and are
// retried on a later access, without blocking requests for other
// levels behind them. For queue-only prefetchers a failed admission
// stops this round, leaving the remaining requests in their internal
// queue for the next access.
func (c *Core) issuePrefetches(now uint64) {
	src := ""
	if c.lt != nil {
		src = c.pf.Name()
	}
	budget := c.levels[0].pqSize
	if rq, ok := c.pf.(prefetch.Requeuer); ok {
		reqs := prefetch.IssueInto(c.pf, c.issueBuf[:0], budget)
		c.issueBuf = reqs[:0]
		for _, r := range reqs {
			if !c.admit(r, now, src) {
				rq.Requeue(r)
			}
		}
		return
	}
	for ; budget > 0; budget-- {
		reqs := prefetch.IssueInto(c.pf, c.issueBuf[:0], 1)
		c.issueBuf = reqs[:0]
		if len(reqs) == 0 {
			return
		}
		if !c.admit(reqs[0], now, src) {
			return
		}
	}
}

// issueAttached drains the prefetcher attached at hierarchy level idx;
// its requests always fill that level regardless of their nominal
// target.
func (c *Core) issueAttached(idx int, now uint64) {
	lv := &c.levels[idx]
	src := ""
	if c.lt != nil {
		src = lv.attached.Name()
	}
	for budget := lv.pqSize; budget > 0; budget-- {
		reqs := prefetch.IssueInto(lv.attached, lv.attachBuf[:0], 1)
		lv.attachBuf = reqs[:0]
		if len(reqs) == 0 {
			return
		}
		r := reqs[0]
		r.Level = lv.pfLevel
		if !c.prefetchOne(idx, r, now, src) {
			if rq, ok := lv.attached.(prefetch.Requeuer); ok {
				rq.Requeue(reqs[0])
			}
			return
		}
	}
}

// admit routes one primary-prefetcher request to its target level. It
// reports whether the request was admitted; requests with no
// prefetchable target level (LevelNone) are silently accepted.
func (c *Core) admit(r prefetch.Request, now uint64, src string) bool {
	idx, ok := c.levelIndex(r.Level)
	if !ok {
		return true
	}
	return c.prefetchOne(idx, r, now, src)
}

// prefetchOne injects a single prefetch request at hierarchy level
// idx. It reports whether the request was admitted: requests for
// lines already present or in flight are filtered (admitted, nothing
// to do); requests without a free prefetch MSHR return false before
// consuming any downstream bandwidth so the caller can requeue them.
// src names the issuing prefetcher for lifecycle attribution (unused
// when tracing is off); r.Level labels the per-level issue stats.
func (c *Core) prefetchOne(idx int, r prefetch.Request, now uint64, src string) bool {
	line := r.Addr.Line()
	lv := &c.levels[idx]
	if lv.cache.Contains(line) {
		c.dropRedundant(r.Level, line, now, src)
		return true
	}
	if _, ok := lv.cache.InFlight(line, now); ok {
		c.dropRedundant(r.Level, line, now, src)
		return true
	}
	if !lv.pq.free(now) || !prefetchRoom(lv.cache, now) {
		c.pfStats.DroppedMSH++
		return false
	}
	// Record the issue before the fill walk so the tracker can match
	// the fill event it triggers. Like the other issue stats,
	// lifecycles only accumulate inside the measurement window.
	if c.lt != nil && c.statsOn {
		c.lt.issued(src, r.Level, line, now)
	}
	done := c.fetch(idx+1, line, now+lv.latency, false, true, 0)
	lv.cache.ReserveMSHR(line, now, done, false)
	lv.pq.add(now + lv.latency)
	c.fill(idx, line, done, true)
	if c.statsOn {
		c.pfStats.Issued[r.Level]++
	}
	return true
}

// dropRedundant accounts a prefetch filtered at issue (line already
// present or in flight at its target level).
func (c *Core) dropRedundant(level prefetch.Level, line mem.Addr, now uint64, src string) {
	c.pfStats.DroppedPQ++
	if c.lt != nil && c.statsOn {
		c.lt.redundant(src, level, line, now)
	}
}
