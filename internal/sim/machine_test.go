package sim

import (
	"strings"
	"testing"

	"pmp/internal/cache"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/trace"
)

// twoLevelConfig returns a hierarchy with no L2C: a private L1D
// directly over a shared inclusive LLC.
func twoLevelConfig() Config {
	cfg := quickConfig()
	cfg.Levels = []LevelSpec{
		{Cache: cfg.L1D},
		{Cache: cfg.LLC, Shared: true, Inclusive: true},
	}
	return cfg
}

func TestTwoLevelHierarchyRuns(t *testing.T) {
	cfg := twoLevelConfig()
	s := NewSystem(cfg, prefetch.Nop{})
	if got := s.Machine().Levels(); got != 2 {
		t.Fatalf("Levels() = %d, want 2", got)
	}
	res := s.Run(streamTrace(30_000))
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.L1D.DemandAccesses == 0 || res.LLC.DemandAccesses == 0 {
		t.Errorf("both levels should see demand traffic: L1D=%d LLC=%d",
			res.L1D.DemandAccesses, res.LLC.DemandAccesses)
	}
	if res.L2C != (cache.Stats{}) {
		t.Errorf("2-level hierarchy has no L2C, stats should be zero: %+v", res.L2C)
	}
	if res.DRAM.Requests == 0 {
		t.Error("missing the LLC must reach DRAM")
	}
}

func TestTwoLevelPrefetchTargetsClampToHierarchy(t *testing.T) {
	// In a 2-level hierarchy, L2- and LLC-targeted requests both land
	// at the outer level; L1 requests at the inner. The run must not
	// panic and must issue at every nominal level.
	cfg := twoLevelConfig()
	cfg.Warmup = 0
	rec := &recorder{}
	target := mem.Addr(0x400000)
	var recs []trace.Record
	for i := 0; i < 64; i++ {
		recs = append(recs, trace.Record{PC: 1, Addr: mem.Addr(0x100000 + i*mem.LineBytes)})
	}
	s := NewSystem(cfg, rec)
	rec.reqs = []prefetch.Request{
		{Addr: target, Level: prefetch.LevelL1},
		{Addr: target + 64*mem.LineBytes, Level: prefetch.LevelL2},
		{Addr: target + 128*mem.LineBytes, Level: prefetch.LevelLLC},
	}
	res := s.Run(trace.NewTrace("t", recs))
	for _, lv := range []prefetch.Level{prefetch.LevelL1, prefetch.LevelL2, prefetch.LevelLLC} {
		if res.PF.Issued[lv] == 0 {
			t.Errorf("no prefetch issued at nominal level %d", lv)
		}
	}
}

func TestInclusionPolicyKnob(t *testing.T) {
	// One-set caches so every line contends: line A stays hot in the
	// L1D while nine other lines stream through, overflowing the 8-way
	// LLC. L1 hits never refresh the LLC, so A's LLC copy goes stale
	// and is evicted. The inclusive (default) LLC back-invalidates A
	// out of the L1; NonInclusiveLLC leaves the L1 copy resident while
	// the LLC copy is gone.
	build := func(nonInclusive bool) *Machine {
		cfg := quickConfig()
		cfg.NonInclusiveLLC = nonInclusive
		cfg.L1D = cache.Config{Name: "L1D", Sets: 1, Ways: 2, Latency: 1, MSHRs: 8, PQSize: 2}
		cfg.L2C = cache.Config{Name: "L2C", Sets: 1, Ways: 4, Latency: 2, MSHRs: 8, PQSize: 2}
		cfg.LLC = cache.Config{Name: "LLC", Sets: 1, Ways: 8, Latency: 4, MSHRs: 8, PQSize: 2}
		return NewMachine(cfg, []prefetch.Prefetcher{prefetch.Nop{}})
	}
	run := func(m *Machine) (l1Has, llcHas bool) {
		c := m.Core(0)
		lineA := mem.Addr(0).Line()
		now := uint64(0)
		c.demandAccess(0x1, lineA, now)
		for i := 1; i <= 9; i++ {
			now += 10_000
			c.demandAccess(0x2, mem.Addr(i*mem.LineBytes), now)
			now += 10_000
			c.demandAccess(0x1, lineA, now)
		}
		return c.CacheAt(0).Contains(lineA), c.CacheAt(m.Levels()-1).Contains(lineA)
	}

	l1Has, llcHas := run(build(false))
	if l1Has && !llcHas {
		t.Error("inclusive LLC violated: line resident in L1D but not LLC")
	}
	l1Has, llcHas = run(build(true))
	if !l1Has {
		t.Error("non-inclusive LLC: hot line should stay resident in L1D")
	}
	if llcHas {
		t.Error("non-inclusive LLC: stale LLC copy should have been evicted")
	}
}

func TestSharedLevelBackInvalidationAcrossCores(t *testing.T) {
	// Two cores over a 2-line shared inclusive outer level: when core
	// 0's traffic evicts a line core 1 holds in its L1, the
	// back-invalidation must reach core 1's private level and its
	// prefetcher's OnEvict.
	cfg := quickConfig()
	cfg.Levels = []LevelSpec{
		{Cache: cache.Config{Name: "L1", Sets: 1, Ways: 1, Latency: 1, MSHRs: 4, PQSize: 2}},
		{Cache: cache.Config{Name: "SL", Sets: 2, Ways: 1, Latency: 2, MSHRs: 8, PQSize: 4}, Shared: true, Inclusive: true},
	}
	rec0, rec1 := &recorder{}, &recorder{}
	m := NewMachine(cfg, []prefetch.Prefetcher{rec0, rec1})

	// Both lines map to shared-level set 0 (even line IDs).
	lineA := mem.Addr(0).Line()
	lineB := mem.Addr(2 * mem.LineBytes).Line()

	m.Core(1).demandAccess(0x1, lineA, 0)
	if !m.Core(1).CacheAt(0).Contains(lineA) || !m.Core(1).CacheAt(1).Contains(lineA) {
		t.Fatal("setup: core 1 should hold lineA in L1 and the shared level")
	}

	// Core 0 demands lineB: the 1-way shared set evicts lineA.
	m.Core(0).demandAccess(0x2, lineB, 0)
	if m.Core(1).CacheAt(1).Contains(lineA) {
		t.Fatal("shared level should have evicted lineA")
	}
	if m.Core(1).CacheAt(0).Contains(lineA) {
		t.Error("back-invalidation did not reach core 1's private L1")
	}
	evicted := false
	for _, l := range rec1.evicted {
		if l == lineA {
			evicted = true
		}
	}
	if !evicted {
		t.Error("core 1's prefetcher was not told about the back-invalidated line")
	}
}

// orderSource wraps a trace and logs which core pulled a record at
// each scheduling step (via the shared log slice).
type orderSource struct {
	trace.Source
	id  int
	log *[]int
}

func (o *orderSource) Next() (trace.Record, bool) {
	r, ok := o.Source.Next()
	if ok {
		*o.log = append(*o.log, o.id)
	}
	return r, ok
}

func TestLaggardCoreStepsNext(t *testing.T) {
	// Two cores on identical traces must interleave tightly: the run
	// loop always steps the core furthest behind in cycles, so neither
	// core can sprint ahead for more than a dispatch group.
	cfg := quickConfig()
	cfg.Warmup = 1_000
	cfg.Measure = 10_000
	var log []int
	srcs := []trace.Source{
		&orderSource{Source: streamTrace(100_000), id: 0, log: &log},
		&orderSource{Source: streamTrace(100_000), id: 1, log: &log},
	}
	NewMulticore(cfg, []prefetch.Prefetcher{prefetch.Nop{}, prefetch.Nop{}}).Run(srcs)

	counts := map[int]int{}
	maxRun, run, prev := 0, 0, -1
	for _, id := range log {
		counts[id]++
		if id == prev {
			run++
		} else {
			run, prev = 1, id
		}
		if run > maxRun {
			maxRun = run
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("both cores must step: %v", counts)
	}
	// Ties go to the lower-indexed core until its cycle advances past
	// the other's, so short same-core bursts are expected — long ones
	// mean the laggard rule is broken.
	if maxRun > 50 {
		t.Errorf("one core ran %d consecutive steps; laggard scheduling should interleave", maxRun)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("identical traces should make near-equal progress, got %v", counts)
	}
}

func TestMaxTraceWrapsBoundsReplay(t *testing.T) {
	// A 1000-record trace (one instruction per record) under a huge
	// measure window finishes by the wrap limit: the initial pass plus
	// MaxTraceWraps replays.
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i % 8 * mem.LineBytes)}
	}
	cfg := quickConfig()
	cfg.Warmup = 0
	cfg.Measure = 1 << 40
	cfg.MaxTraceWraps = 3
	res := NewMulticore(cfg, []prefetch.Prefetcher{prefetch.Nop{}}).
		Run([]trace.Source{trace.NewTrace("w", recs)})
	want := uint64((cfg.MaxTraceWraps + 1) * len(recs))
	if res[0].Instructions != want {
		t.Errorf("instructions = %d, want %d (initial pass + %d wraps)",
			res[0].Instructions, want, cfg.MaxTraceWraps)
	}
}

func TestMaxTraceWrapsDefaultAndValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxTraceWraps = -1
	err := cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "MaxTraceWraps") {
		t.Errorf("negative MaxTraceWraps should be rejected, got %v", err)
	}
	cfg.MaxTraceWraps = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero MaxTraceWraps (use default) rejected: %v", err)
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	base := quickConfig()
	l1 := LevelSpec{Cache: base.L1D}
	llc := LevelSpec{Cache: base.LLC, Shared: true, Inclusive: true}

	cfg := base
	cfg.Levels = []LevelSpec{l1}
	if err := cfg.Validate(); err == nil {
		t.Error("1-level hierarchy accepted")
	}

	cfg = base
	cfg.Levels = []LevelSpec{{Cache: base.L1D, Shared: true}, llc}
	if err := cfg.Validate(); err == nil {
		t.Error("shared innermost level accepted")
	}

	cfg = base
	cfg.Levels = []LevelSpec{l1, llc, {Cache: base.L2C}}
	if err := cfg.Validate(); err == nil {
		t.Error("private level below a shared one accepted")
	}

	cfg = base
	cfg.Levels = []LevelSpec{{Cache: base.L2C}, {Cache: base.L1D, Shared: true}}
	if err := cfg.Validate(); err == nil {
		t.Error("shrinking hierarchy accepted")
	}

	cfg = base
	cfg.Levels = []LevelSpec{l1, {Cache: base.L2C}, llc}
	if err := cfg.Validate(); err != nil {
		t.Errorf("explicit classic hierarchy rejected: %v", err)
	}
}
