package sim

import (
	"testing"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/trace"
)

// The hot path — step -> demandAccess -> Train/IssueInto -> cache
// lookups — must not allocate in steady state. These tests pin that
// invariant: the benchmarks report allocs/op and the AllocsPerRun
// tests fail the build if a per-access allocation sneaks back in.

// stepWorkload primes a core with enough of a trace that every
// structure (caches, pattern tables, prefetch buffer, MSHR files) has
// reached steady state, then returns records to replay.
func stepWorkload(tb testing.TB, pf prefetch.Prefetcher) (*Core, []trace.Record) {
	tb.Helper()
	c := NewSystem(quickConfig(), pf).Machine().Core(0)
	src := streamTrace(40_000)
	var records []trace.Record
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		records = append(records, r)
	}
	for _, r := range records[:30_000] {
		c.step(r)
	}
	return c, records[30_000:]
}

func TestStepDoesNotAllocate(t *testing.T) {
	for _, name := range []string{"pmp", "nop"} {
		t.Run(name, func(t *testing.T) {
			var pf prefetch.Prefetcher = prefetch.Nop{}
			if name == "pmp" {
				pf = core.New(core.DefaultConfig())
			}
			s, records := stepWorkload(t, pf)
			i := 0
			avg := testing.AllocsPerRun(len(records)-1, func() {
				s.step(records[i])
				i++
			})
			if avg != 0 {
				t.Errorf("steady-state step with %s allocates %.3f allocs/access, want 0", name, avg)
			}
		})
	}
}

func BenchmarkSystemStep(b *testing.B) {
	for _, name := range []string{"pmp", "nop"} {
		b.Run(name, func(b *testing.B) {
			var pf prefetch.Prefetcher = prefetch.Nop{}
			if name == "pmp" {
				pf = core.New(core.DefaultConfig())
			}
			s, records := stepWorkload(b, pf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.step(records[i%len(records)])
			}
		})
	}
}
