// Package sim wires the core model, cache hierarchy, DRAM and a
// prefetcher into a trace-driven system simulator, single-core or
// multi-core, configured after the paper's Table IV.
package sim

import (
	"fmt"

	"pmp/internal/cache"
	"pmp/internal/cpu"
	"pmp/internal/dram"
	"pmp/internal/tlb"
)

// Config describes a simulated system (one core's private hierarchy
// plus the shared LLC/DRAM parameters).
type Config struct {
	Core cpu.Config
	L1D  cache.Config
	L2C  cache.Config
	LLC  cache.Config
	DRAM dram.Config
	TLB  tlb.Config

	// Warmup is the number of instructions simulated before statistics
	// are reset (the paper uses 50M; scaled runs use less).
	Warmup uint64
	// Measure is the number of instructions measured after warm-up;
	// 0 measures to the end of the trace.
	Measure uint64
}

// DefaultConfig returns the paper's Table IV system: 4GHz 4-wide core
// with a 352-entry ROB, 48KB/12-way L1D (5 cyc), 512KB/8-way L2 (10
// cyc), 2MB/16-way LLC (20 cyc), one 3200 MT/s DRAM channel.
func DefaultConfig() Config {
	return Config{
		Core: cpu.Config{Width: 4, ROB: 352},
		L1D:  cache.Config{Name: "L1D", Sets: 64, Ways: 12, Latency: 5, MSHRs: 16, PQSize: 8},
		L2C:  cache.Config{Name: "L2C", Sets: 1024, Ways: 8, Latency: 10, MSHRs: 32, PQSize: 16},
		LLC:  cache.Config{Name: "LLC", Sets: 2048, Ways: 16, Latency: 20, MSHRs: 64, PQSize: 32},
		DRAM: dram.Config{
			Channels: 1, TransferMTps: 3200, BusBytes: 8,
			// ~50ns row access + controller at 4GHz.
			CoreClockMHz: 4000, LatencyCycles: 200,
		},
		TLB:    tlb.DefaultConfig(),
		Warmup: 200_000,
	}
}

// Fingerprint returns a canonical string identifying the complete
// configuration. Config is all value types, so the rendered form
// covers every field — system geometry, bandwidth, TLB, warm-up and
// measure windows. Baseline caches and sweep job IDs key on it: any
// configuration change yields a new fingerprint, so persisted results
// are never served to a reconfigured run.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("%+v", c)
}

// WithLLCMB returns the configuration with the LLC resized to the given
// capacity in MB by scaling sets (the paper's Fig 12b sweep enlarges the
// LLC "by increasing the number of LLC sets"). MSHRs and PQ scale with
// capacity as in Table IV (32→128 PQ, 64→256 MSHR for 2→8MB).
func (c Config) WithLLCMB(mb int) Config {
	c.LLC.Sets = 2048 * mb / 2
	c.LLC.MSHRs = 64 * mb / 2
	c.LLC.PQSize = 32 * mb / 2
	return c
}

// WithBandwidth returns the configuration with the DRAM transfer rate
// set to the given MT/s (Fig 12a sweep).
func (c Config) WithBandwidth(mtps int) Config {
	c.DRAM.TransferMTps = mtps
	return c
}

// Validate reports the first configuration error found.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	for _, cc := range []cache.Config{c.L1D, c.L2C, c.LLC} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.TLB.Validate(); err != nil {
		return err
	}
	if c.L1D.SizeBytes() >= c.L2C.SizeBytes() || c.L2C.SizeBytes() >= c.LLC.SizeBytes() {
		return fmt.Errorf("sim: hierarchy must grow monotonically (%d, %d, %d bytes)",
			c.L1D.SizeBytes(), c.L2C.SizeBytes(), c.LLC.SizeBytes())
	}
	return nil
}
