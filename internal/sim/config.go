// Package sim wires the core model, cache hierarchy, DRAM and a
// prefetcher into a trace-driven system simulator, single-core or
// multi-core, configured after the paper's Table IV.
package sim

import (
	"fmt"

	"pmp/internal/cache"
	"pmp/internal/cpu"
	"pmp/internal/dram"
	"pmp/internal/tlb"
)

// LevelSpec describes one level of an explicit cache hierarchy
// (innermost first).
type LevelSpec struct {
	Cache cache.Config

	// Shared marks the level as shared by every core. Shared levels
	// must form a suffix of the hierarchy: once a level is shared,
	// every level below it is too.
	Shared bool

	// Inclusive makes the level inclusive of all inner levels:
	// evicting a line back-invalidates it from every level above it
	// (in every core, for shared levels).
	Inclusive bool
}

// Config describes a simulated system (one core's private hierarchy
// plus the shared LLC/DRAM parameters).
type Config struct {
	Core cpu.Config
	L1D  cache.Config
	L2C  cache.Config
	LLC  cache.Config
	DRAM dram.Config
	TLB  tlb.Config

	// Levels, when non-empty, replaces the classic L1D/L2C/LLC fields
	// with an explicit N-level hierarchy (innermost first, at least 2
	// levels); L1D/L2C/LLC are then ignored. Result reports the
	// innermost level as L1D, the outermost as LLC, and level 1 as L2C
	// when the hierarchy has three or more levels.
	Levels []LevelSpec

	// NonInclusiveLLC disables LLC back-invalidation in the classic
	// 3-level hierarchy, matching ChampSim's default non-inclusive
	// LLC. Ignored when Levels is set — use LevelSpec.Inclusive there.
	NonInclusiveLLC bool

	// Warmup is the number of instructions simulated before statistics
	// are reset (the paper uses 50M; scaled runs use less).
	Warmup uint64
	// Measure is the number of instructions measured after warm-up;
	// 0 measures to the end of the trace.
	Measure uint64

	// MaxTraceWraps bounds how many times a trace is replayed from the
	// start when it ends before a core's measurement window does
	// (multicore mixes). 0 means DefaultMaxTraceWraps; negative is
	// rejected by Validate.
	MaxTraceWraps int
}

// DefaultMaxTraceWraps is the trace-replay bound used when
// Config.MaxTraceWraps is 0.
const DefaultMaxTraceWraps = 1000

// DefaultConfig returns the paper's Table IV system: 4GHz 4-wide core
// with a 352-entry ROB, 48KB/12-way L1D (5 cyc), 512KB/8-way L2 (10
// cyc), 2MB/16-way LLC (20 cyc), one 3200 MT/s DRAM channel.
func DefaultConfig() Config {
	return Config{
		Core: cpu.Config{Width: 4, ROB: 352},
		L1D:  cache.Config{Name: "L1D", Sets: 64, Ways: 12, Latency: 5, MSHRs: 16, PQSize: 8},
		L2C:  cache.Config{Name: "L2C", Sets: 1024, Ways: 8, Latency: 10, MSHRs: 32, PQSize: 16},
		LLC:  cache.Config{Name: "LLC", Sets: 2048, Ways: 16, Latency: 20, MSHRs: 64, PQSize: 32},
		DRAM: dram.Config{
			Channels: 1, TransferMTps: 3200, BusBytes: 8,
			// ~50ns row access + controller at 4GHz.
			CoreClockMHz: 4000, LatencyCycles: 200,
		},
		TLB:    tlb.DefaultConfig(),
		Warmup: 200_000,
	}
}

// hierarchy resolves the configured cache hierarchy, innermost first.
// With no explicit Levels it is the classic private L1D/L2C over a
// shared LLC, inclusive unless NonInclusiveLLC is set.
func (c Config) hierarchy() []LevelSpec {
	if len(c.Levels) > 0 {
		return c.Levels
	}
	return []LevelSpec{
		{Cache: c.L1D},
		{Cache: c.L2C},
		{Cache: c.LLC, Shared: true, Inclusive: !c.NonInclusiveLLC},
	}
}

// Fingerprint returns a canonical string identifying the complete
// configuration. Config is all value types (Levels renders
// element-wise), so the rendered form covers every field — system
// geometry, bandwidth, TLB, warm-up and measure windows. Baseline
// caches and sweep job IDs key on it: any configuration change yields
// a new fingerprint, so persisted results are never served to a
// reconfigured run.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("%+v", c)
}

// WithLLCMB returns the configuration with the LLC resized to the given
// capacity in MB by scaling sets (the paper's Fig 12b sweep enlarges the
// LLC "by increasing the number of LLC sets"). MSHRs and PQ scale with
// capacity as in Table IV (32→128 PQ, 64→256 MSHR for 2→8MB).
func (c Config) WithLLCMB(mb int) Config {
	c.LLC.Sets = 2048 * mb / 2
	c.LLC.MSHRs = 64 * mb / 2
	c.LLC.PQSize = 32 * mb / 2
	return c
}

// WithBandwidth returns the configuration with the DRAM transfer rate
// set to the given MT/s (Fig 12a sweep).
func (c Config) WithBandwidth(mtps int) Config {
	c.DRAM.TransferMTps = mtps
	return c
}

// Validate reports the first configuration error found.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	levels := c.hierarchy()
	if len(levels) < 2 {
		return fmt.Errorf("sim: hierarchy needs at least 2 levels, got %d", len(levels))
	}
	if levels[0].Shared {
		return fmt.Errorf("sim: the innermost cache level must be core-private")
	}
	shared := false
	for i, lv := range levels {
		if err := lv.Cache.Validate(); err != nil {
			return err
		}
		if shared && !lv.Shared {
			return fmt.Errorf("sim: shared levels must form a suffix of the hierarchy (level %d is private below a shared level)", i)
		}
		shared = shared || lv.Shared
		if i > 0 && levels[i-1].Cache.SizeBytes() >= lv.Cache.SizeBytes() {
			return fmt.Errorf("sim: hierarchy must grow monotonically (%d bytes at level %d, %d bytes at level %d)",
				levels[i-1].Cache.SizeBytes(), i-1, lv.Cache.SizeBytes(), i)
		}
	}
	if c.MaxTraceWraps < 0 {
		return fmt.Errorf("sim: MaxTraceWraps must be >= 0, got %d", c.MaxTraceWraps)
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	return c.TLB.Validate()
}
