// Package tlb models the two-level data TLB of the paper's Table IV
// configuration (64-entry DTLB, 1536-entry shared L2 TLB, 4KB pages).
// Misses in the DTLB that hit the L2 TLB pay a small fixed penalty;
// L2 TLB misses pay a page-walk penalty. Translation is identity
// (virtually-indexed simulation), so the TLB only contributes latency
// — which is exactly its role in prefetcher evaluation: address
// translation overhead scales with the footprint of the access stream,
// not with prefetching, so normalized IPC comparisons remain fair
// while absolute IPC gains realism.
package tlb

import (
	"fmt"

	"pmp/internal/mem"
)

// Config describes a two-level TLB.
type Config struct {
	L1Entries int    // DTLB entries (fully associative model)
	L2Entries int    // shared second-level TLB entries
	L2Latency uint64 // penalty for a DTLB miss that hits the L2 TLB
	WalkCost  uint64 // penalty for an L2 TLB miss (page walk)
}

// DefaultConfig returns the paper's Table IV TLB geometry.
func DefaultConfig() Config {
	return Config{
		L1Entries: 64,
		L2Entries: 1536,
		L2Latency: 8,
		WalkCost:  60,
	}
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.L1Entries <= 0 || c.L2Entries <= 0 {
		return fmt.Errorf("tlb: entries must be positive (%d, %d)", c.L1Entries, c.L2Entries)
	}
	if c.L1Entries > c.L2Entries {
		return fmt.Errorf("tlb: L1 (%d) larger than L2 (%d)", c.L1Entries, c.L2Entries)
	}
	return nil
}

// Stats counts translation outcomes.
type Stats struct {
	Accesses uint64
	L1Misses uint64
	L2Misses uint64 // page walks
}

// level is one fully-associative-by-hash TLB level: a direct-mapped
// tag array sized to the entry count, which models conflict behaviour
// adequately at simulation granularity.
type level struct {
	tags []uint64
	mask uint64
}

func newLevel(entries int) *level {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := &level{tags: make([]uint64, n), mask: uint64(n - 1)}
	for i := range t.tags {
		t.tags[i] = ^uint64(0)
	}
	return t
}

func (l *level) lookup(page uint64) bool {
	return l.tags[mem.Mix64(page)&l.mask] == page
}

func (l *level) insert(page uint64) {
	l.tags[mem.Mix64(page)&l.mask] = page
}

// TLB is the two-level structure. Construct with New.
type TLB struct {
	cfg     Config
	l1, l2  *level
	statsOn bool
	stats   Stats
}

// New constructs a TLB; it panics on invalid configuration.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{cfg: cfg, l1: newLevel(cfg.L1Entries), l2: newLevel(cfg.L2Entries)}
}

// Config returns the configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// EnableStats switches accounting on or off (off during warm-up).
func (t *TLB) EnableStats(on bool) { t.statsOn = on }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Translate looks up the page of addr and returns the translation
// latency to add to the access: 0 on a DTLB hit, L2Latency on an L2
// hit, L2Latency+WalkCost on a page walk. Both levels are filled on
// the way out.
func (t *TLB) Translate(addr mem.Addr) uint64 {
	page := addr.PageID()
	if t.statsOn {
		t.stats.Accesses++
	}
	if t.l1.lookup(page) {
		return 0
	}
	if t.statsOn {
		t.stats.L1Misses++
	}
	if t.l2.lookup(page) {
		t.l1.insert(page)
		return t.cfg.L2Latency
	}
	if t.statsOn {
		t.stats.L2Misses++
	}
	t.l2.insert(page)
	t.l1.insert(page)
	return t.cfg.L2Latency + t.cfg.WalkCost
}

// Flush invalidates all translations.
func (t *TLB) Flush() {
	for i := range t.l1.tags {
		t.l1.tags[i] = ^uint64(0)
	}
	for i := range t.l2.tags {
		t.l2.tags[i] = ^uint64(0)
	}
}
