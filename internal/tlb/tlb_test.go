package tlb

import (
	"testing"

	"pmp/internal/mem"
)

func addrOfPage(p uint64) mem.Addr { return mem.Addr(p * mem.PageBytes) }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{L1Entries: 0, L2Entries: 8},
		{L1Entries: 8, L2Entries: 0},
		{L1Entries: 64, L2Entries: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	tl := New(DefaultConfig())
	tl.EnableStats(true)
	a := addrOfPage(42)
	if lat := tl.Translate(a); lat != 68 { // L2Latency + WalkCost
		t.Errorf("cold translate latency = %d, want 68", lat)
	}
	if lat := tl.Translate(a); lat != 0 {
		t.Errorf("warm translate latency = %d, want 0", lat)
	}
	s := tl.Stats()
	if s.Accesses != 2 || s.L1Misses != 1 || s.L2Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestL2HitPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Entries = 2 // tiny DTLB so entries fall out fast
	tl := New(cfg)
	tl.EnableStats(true)
	// Touch enough pages to displace page 0 from the DTLB but not the
	// L2 TLB.
	tl.Translate(addrOfPage(0))
	for p := uint64(1); p < 64; p++ {
		tl.Translate(addrOfPage(p))
	}
	lat := tl.Translate(addrOfPage(0))
	if lat != cfg.L2Latency && lat != 0 {
		// 0 possible only if page 0 survived hashing; with 64 fills over
		// 2 slots that is effectively impossible.
		t.Errorf("L2-hit latency = %d, want %d", lat, cfg.L2Latency)
	}
}

func TestSameLineSamePage(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Translate(addrOfPage(7))
	if lat := tl.Translate(addrOfPage(7) + 4032); lat != 0 {
		t.Errorf("intra-page access missed: %d", lat)
	}
}

func TestFlush(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Translate(addrOfPage(3))
	tl.Flush()
	if lat := tl.Translate(addrOfPage(3)); lat == 0 {
		t.Error("flush should force a walk")
	}
}

func TestHugeFootprintWalks(t *testing.T) {
	tl := New(DefaultConfig())
	tl.EnableStats(true)
	// A footprint far beyond 1536 pages must keep walking.
	for p := uint64(0); p < 20_000; p++ {
		tl.Translate(addrOfPage(p))
	}
	s := tl.Stats()
	if s.L2Misses < 15_000 {
		t.Errorf("only %d walks over a 20000-page cold footprint", s.L2Misses)
	}
}

func TestStatsGatedByEnable(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Translate(addrOfPage(1))
	if tl.Stats() != (Stats{}) {
		t.Error("stats should be frozen before EnableStats")
	}
}
