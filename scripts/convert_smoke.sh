#!/usr/bin/env bash
# ChampSim conversion smoke test (docs/traces.md, "Real workloads").
#
# Proves the ingestion pipeline end to end on the committed golden
# fixture (internal/trace/champsim/testdata):
#   1. `pmptrace convert` on the raw and gzip'd fixture produces
#      byte-identical, deterministic `.pmpt` output (-verify streams
#      the result back through the lazy FileSource and the buffered
#      decoder and compares every record),
#   2. a QuickScale PMP sim over the converted file is deterministic:
#      two runs render byte-identical results,
#   3. an external-suite manifest (converted fixture + two generated
#      traces) drives the EXTW experiment through the local pool and
#      through a pmpsweepd coordinator + worker, and the two stores'
#      canonical dumps are byte-identical — the worker reconstructs
#      sources from the trace_file carried in the job spec, so it
#      needs no manifest of its own.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
addr="${CONVERT_SMOKE_ADDR:-127.0.0.1:7087}"
pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

fixture=internal/trace/champsim/testdata/golden.champsim.trace

echo "== build =="
go build -o "$tmp/pmptrace" ./cmd/pmptrace
go build -o "$tmp/pmpsim" ./cmd/pmpsim
go build -o "$tmp/pmpexperiments" ./cmd/pmpexperiments
go build -o "$tmp/pmpsweepd" ./cmd/pmpsweepd

echo "== convert (raw and gzip fixture, -verify) =="
"$tmp/pmptrace" convert -verify -name golden -o "$tmp/golden.pmpt" \
  "$fixture" | tee "$tmp/convert.out"
grep -q "verify         OK" "$tmp/convert.out" ||
  { echo "convert_smoke: verify line missing from convert output" >&2; exit 1; }
"$tmp/pmptrace" convert -name golden -o "$tmp/golden-gz.pmpt" "$fixture.gz"
if ! cmp -s "$tmp/golden.pmpt" "$tmp/golden-gz.pmpt"; then
  echo "convert_smoke: raw and gzip conversions differ" >&2
  exit 1
fi
digest=$(sha256sum "$tmp/golden.pmpt" | cut -d' ' -f1)
echo "converted digest: $digest"

echo "== QuickScale sim over the converted fixture (x2, deterministic) =="
"$tmp/pmpsim" -pf pmp -file "$tmp/golden.pmpt" -warmup 0 >"$tmp/sim1.out"
"$tmp/pmpsim" -pf pmp -file "$tmp/golden.pmpt" -warmup 0 >"$tmp/sim2.out"
grep -q "prefetcher  pmp" "$tmp/sim1.out" ||
  { echo "convert_smoke: pmpsim produced no result" >&2; cat "$tmp/sim1.out" >&2; exit 1; }
if ! cmp -s "$tmp/sim1.out" "$tmp/sim2.out"; then
  echo "convert_smoke: sim output over the converted trace is not deterministic:" >&2
  diff "$tmp/sim1.out" "$tmp/sim2.out" >&2
  exit 1
fi
echo "sim digest: $(sha256sum "$tmp/sim1.out" | cut -d' ' -f1)"

echo "== manifest: converted fixture + two generated traces =="
"$tmp/pmptrace" -gen spec06.mcf-2 -records 60000 -o "$tmp/ext-a.pmpt"
"$tmp/pmptrace" -gen spec06.stride-1 -records 60000 -o "$tmp/ext-b.pmpt"
sum() { sha256sum "$1" | cut -d' ' -f1; }
cat >"$tmp/manifest.json" <<EOF
{
  "version": 1,
  "traces": [
    {"name": "golden", "family": "dpc3", "class": "medium",
     "path": "golden.pmpt", "sha256": "$(sum "$tmp/golden.pmpt")", "records": 100},
    {"name": "ext-a", "family": "spec06", "class": "high",
     "path": "ext-a.pmpt", "sha256": "$(sum "$tmp/ext-a.pmpt")"},
    {"name": "ext-b", "family": "spec06", "class": "medium",
     "path": "ext-b.pmpt", "sha256": "$(sum "$tmp/ext-b.pmpt")"}
  ]
}
EOF

echo "== EXTW serial (local pool) =="
"$tmp/pmpexperiments" -scale quick -exp EXTW -manifest "$tmp/manifest.json" \
  -store "$tmp/serial.jsonl" >"$tmp/serial.out" 2>"$tmp/serial.err"
grep -q "EXTW" "$tmp/serial.out" ||
  { echo "convert_smoke: EXTW table missing from serial output" >&2; exit 1; }

echo "== EXTW distributed (coordinator + worker, trace_file on the wire) =="
"$tmp/pmpsweepd" -listen "$addr" -store "$tmp/merged.jsonl" \
  >"$tmp/coord.log" 2>&1 &
pids+=("$!")
coord_pid=$!
for _ in $(seq 1 50); do
  if curl -sf -X POST -d '{}' "http://$addr/status" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
# The worker gets no -manifest: jobs must resolve via trace_file alone.
"$tmp/pmpsweepd" -worker -connect "$addr" -name convert-smoke \
  >"$tmp/worker.log" 2>&1 &
pids+=("$!")
"$tmp/pmpexperiments" -scale quick -exp EXTW -manifest "$tmp/manifest.json" \
  -remote "$addr" >"$tmp/remote.out" 2>"$tmp/remote.err"
kill -TERM "$coord_pid" 2>/dev/null || true
wait "$coord_pid" 2>/dev/null || true

echo "== assert: canonical stores byte-identical (serial vs distributed) =="
"$tmp/pmpsweepd" -canon "$tmp/serial.jsonl" >"$tmp/serial.canon"
"$tmp/pmpsweepd" -canon "$tmp/merged.jsonl" >"$tmp/merged.canon"
if ! cmp -s "$tmp/serial.canon" "$tmp/merged.canon"; then
  echo "convert_smoke: canonical stores differ (serial vs distributed):" >&2
  diff "$tmp/serial.canon" "$tmp/merged.canon" | head -20 >&2
  exit 1
fi
echo "PASS: $(wc -l <"$tmp/merged.canon") records byte-identical to the serial run"

echo "== assert: rendered EXTW tables match =="
strip() { grep -v -E '^-- .* completed in |^total elapsed: |^remote: ' "$1"; }
if ! diff <(strip "$tmp/serial.out") <(strip "$tmp/remote.out"); then
  echo "convert_smoke: remote EXTW table differs from serial" >&2
  exit 1
fi

echo "== convert smoke OK =="
