#!/usr/bin/env bash
# Kill-and-resume smoke test for the sweep orchestrator (docs/sweep.md).
#
# Runs pmpexperiments at quick scale three times:
#   1. an uninterrupted reference run,
#   2. a run SIGINT'd mid-sweep,
#   3. a -resume of the interrupted run,
# then asserts that
#   a. no job completed before the interrupt is re-recorded by the
#      resume (its store record count is unchanged), and
#   b. the resumed run's rendered tables are byte-identical to the
#      uninterrupted reference (timing lines stripped).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/pmpexperiments" ./cmd/pmpexperiments

echo "== reference (uninterrupted) run =="
"$tmp/pmpexperiments" -scale quick -store "$tmp/ref.jsonl" \
  >"$tmp/ref.out" 2>"$tmp/ref.err"

echo "== interrupted run =="
# The interrupt must land while the sweep is still running, or the
# resume leg is vacuous (everything cached, nothing proven). Retry
# with a shorter delay if the run beats the kill, and fail loudly if
# it always does.
delay="${RESUME_SMOKE_INTERRUPT_AFTER:-5}"
interrupted=0
for attempt in 1 2 3; do
  rm -f "$tmp/sweep.jsonl"
  "$tmp/pmpexperiments" -scale quick -store "$tmp/sweep.jsonl" \
    >"$tmp/int.out" 2>"$tmp/int.err" &
  pid=$!
  sleep "$delay"
  if kill -INT "$pid" 2>/dev/null; then
    status=0
    wait "$pid" || status=$?
    echo "interrupted run exited with status $status (attempt $attempt, after ${delay}s)"
    interrupted=1
    break
  fi
  wait "$pid" || true
  echo "attempt $attempt: run finished before the ${delay}s interrupt; retrying sooner"
  delay=$(awk -v d="$delay" 'BEGIN { print d / 2 }')
done
if [ "$interrupted" -ne 1 ]; then
  echo "FAIL: could not interrupt the sweep mid-run after 3 attempts;"
  echo "      the resume leg would be vacuous (set RESUME_SMOKE_INTERRUPT_AFTER lower)"
  exit 1
fi
touch "$tmp/sweep.jsonl"
cp "$tmp/sweep.jsonl" "$tmp/pre.jsonl"

echo "== resumed run =="
"$tmp/pmpexperiments" -scale quick -store "$tmp/sweep.jsonl" -resume \
  >"$tmp/res.out" 2>"$tmp/res.err"

echo "== assert: completed jobs were skipped =="
ok_ids() { grep '"status":"ok"' "$1" 2>/dev/null | grep -o '"id":"[^"]*"' | sort -u || true; }
ok_ids "$tmp/pre.jsonl" >"$tmp/pre_ids.txt"
pre_lines=$(wc -l <"$tmp/pre.jsonl")
tail -n +"$((pre_lines + 1))" "$tmp/sweep.jsonl" >"$tmp/appended.jsonl"
grep -o '"id":"[^"]*"' "$tmp/appended.jsonl" | sort -u >"$tmp/appended_ids.txt" || true
rerun=$(comm -12 "$tmp/pre_ids.txt" "$tmp/appended_ids.txt")
if [ -n "$rerun" ]; then
  echo "FAIL: jobs completed before the interrupt were re-recorded after -resume:"
  echo "$rerun"
  exit 1
fi
echo "PASS: $(wc -l <"$tmp/pre_ids.txt") completed jobs skipped," \
  "$(wc -l <"$tmp/appended_ids.txt") remaining jobs executed by the resume"

echo "== assert: resumed tables match the uninterrupted reference =="
strip() { grep -v -E '^-- .* completed in |^total elapsed: ' "$1"; }
if ! diff <(strip "$tmp/ref.out") <(strip "$tmp/res.out"); then
  echo "FAIL: resumed run's tables differ from the uninterrupted reference"
  exit 1
fi
echo "PASS: rendered tables byte-identical"

echo "== resume smoke OK =="
