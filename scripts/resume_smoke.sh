#!/usr/bin/env bash
# Kill-and-resume smoke test for the sweep orchestrator (docs/sweep.md).
#
# Runs pmpexperiments at quick scale three times:
#   1. an uninterrupted reference run,
#   2. a run SIGINT'd mid-sweep,
#   3. a -resume of the interrupted run,
# then asserts that
#   a. no job completed before the interrupt is re-recorded by the
#      resume (its store record count is unchanged), and
#   b. the resumed run's rendered tables are byte-identical to the
#      uninterrupted reference (timing lines stripped).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/pmpexperiments" ./cmd/pmpexperiments

echo "== reference (uninterrupted) run =="
"$tmp/pmpexperiments" -scale quick -store "$tmp/ref.jsonl" \
  >"$tmp/ref.out" 2>"$tmp/ref.err"

echo "== interrupted run =="
"$tmp/pmpexperiments" -scale quick -store "$tmp/sweep.jsonl" \
  >"$tmp/int.out" 2>"$tmp/int.err" &
pid=$!
sleep "${RESUME_SMOKE_INTERRUPT_AFTER:-5}"
if kill -INT "$pid" 2>/dev/null; then
  status=0
  wait "$pid" || status=$?
  echo "interrupted run exited with status $status"
else
  wait "$pid" || true
  echo "run finished before the interrupt; resume will be fully cached"
fi
touch "$tmp/sweep.jsonl"
cp "$tmp/sweep.jsonl" "$tmp/pre.jsonl"

echo "== resumed run =="
"$tmp/pmpexperiments" -scale quick -store "$tmp/sweep.jsonl" -resume \
  >"$tmp/res.out" 2>"$tmp/res.err"

echo "== assert: completed jobs were skipped =="
ok_ids() { grep '"status":"ok"' "$1" 2>/dev/null | grep -o '"id":"[^"]*"' | sort -u || true; }
ok_ids "$tmp/pre.jsonl" >"$tmp/pre_ids.txt"
pre_lines=$(wc -l <"$tmp/pre.jsonl")
tail -n +"$((pre_lines + 1))" "$tmp/sweep.jsonl" >"$tmp/appended.jsonl"
grep -o '"id":"[^"]*"' "$tmp/appended.jsonl" | sort -u >"$tmp/appended_ids.txt" || true
rerun=$(comm -12 "$tmp/pre_ids.txt" "$tmp/appended_ids.txt")
if [ -n "$rerun" ]; then
  echo "FAIL: jobs completed before the interrupt were re-recorded after -resume:"
  echo "$rerun"
  exit 1
fi
echo "PASS: $(wc -l <"$tmp/pre_ids.txt") completed jobs skipped," \
  "$(wc -l <"$tmp/appended_ids.txt") remaining jobs executed by the resume"

echo "== assert: resumed tables match the uninterrupted reference =="
strip() { grep -v -E '^-- .* completed in |^total elapsed: ' "$1"; }
if ! diff <(strip "$tmp/ref.out") <(strip "$tmp/res.out"); then
  echo "FAIL: resumed run's tables differ from the uninterrupted reference"
  exit 1
fi
echo "PASS: rendered tables byte-identical"

echo "== resume smoke OK =="
