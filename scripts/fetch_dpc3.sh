#!/usr/bin/env bash
# Download DPC-3 / ChampSim trace sets and convert them into an
# external-suite manifest (docs/traces.md, "Real workloads").
#
# For each trace URL this script downloads the compressed ChampSim
# trace (skipping files already present), converts it to `.pmpt` with
# `pmptrace convert`, and assembles `traces.json` — a verified
# external-suite manifest that `pmpexperiments -manifest` and
# `pmpsweepd -worker -manifest` consume directly.
#
# Usage:
#
#   scripts/fetch_dpc3.sh [-o DIR] [-n LIMIT] [-s SKIP] [URL...]
#
#     -o DIR    output directory (default: traces/dpc3)
#     -n LIMIT  cap converted records per trace (0 = all; default 2000000)
#     -s SKIP   skip the first N load records per trace (default 0)
#     URL...    trace URLs; default: a representative DPC-3 subset
#
# Environment:
#
#   FETCH_DPC3_SKIP_DOWNLOAD=1   convert only what is already in DIR
#                                (no network; what CI uses)
#   FETCH_DPC3_BASE_URL          override the mirror base for the
#                                default subset
#
# The network step needs nothing but curl; the convert step needs the
# host `xz` for .xz traces (gzip is handled natively).
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="traces/dpc3"
limit=2000000
skip=0
while getopts "o:n:s:" opt; do
  case "$opt" in
    o) outdir=$OPTARG ;;
    n) limit=$OPTARG ;;
    s) skip=$OPTARG ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

# The default subset mirrors the paper's workload spread: memory-bound
# SPEC 2006/2017 traces from the DPC-3 distribution.
base="${FETCH_DPC3_BASE_URL:-https://dpc3.compas.cs.stonybrook.edu/champsim-traces/speccpu}"
default_urls=(
  "$base/410.bwaves-1963B.champsimtrace.xz"
  "$base/429.mcf-184B.champsimtrace.xz"
  "$base/433.milc-127B.champsimtrace.xz"
  "$base/437.leslie3d-134B.champsimtrace.xz"
  "$base/450.soplex-247B.champsimtrace.xz"
  "$base/462.libquantum-714B.champsimtrace.xz"
  "$base/470.lbm-1274B.champsimtrace.xz"
  "$base/471.omnetpp-188B.champsimtrace.xz"
)
urls=("${@:-}")
if [ "${#urls[@]}" -eq 0 ] || [ -z "${urls[0]}" ]; then
  urls=("${default_urls[@]}")
fi

mkdir -p "$outdir"
go build -o "$outdir/.pmptrace" ./cmd/pmptrace

if [ "${FETCH_DPC3_SKIP_DOWNLOAD:-0}" != "1" ]; then
  echo "== download (into $outdir) =="
  for url in "${urls[@]}"; do
    f="$outdir/$(basename "$url")"
    if [ -s "$f" ]; then
      echo "have $(basename "$f"), skipping download"
      continue
    fi
    echo "fetching $url"
    curl -fL --retry 3 -o "$f.part" "$url"
    mv "$f.part" "$f"
  done
else
  echo "== download skipped (FETCH_DPC3_SKIP_DOWNLOAD=1); converting $outdir contents =="
fi

shopt -s nullglob
inputs=("$outdir"/*.champsimtrace* "$outdir"/*.champsim.trace*)
inputs=($(printf '%s\n' "${inputs[@]}" | grep -v '\.pmpt$' | sort -u))
if [ "${#inputs[@]}" -eq 0 ]; then
  echo "fetch_dpc3: no ChampSim traces in $outdir to convert" >&2
  exit 1
fi

echo "== convert (${#inputs[@]} traces, skip $skip, limit $limit) =="
entries=""
for in_f in "${inputs[@]}"; do
  name=$(basename "$in_f")
  name=${name%%.champsimtrace*}
  name=${name%%.champsim.trace*}
  out_f="$outdir/$name.pmpt"
  if [ ! -s "$out_f" ]; then
    "$outdir/.pmptrace" convert -verify -name "$name" -skip "$skip" -limit "$limit" \
      -family dpc3 -o "$out_f" "$in_f"
  else
    echo "have $name.pmpt, skipping convert"
  fi
  sum=$(sha256sum "$out_f" | cut -d' ' -f1)
  records=$("$outdir/.pmptrace" info "$out_f" | awk '/^records/ {print $2; exit}')
  [ -n "$entries" ] && entries+=","
  entries+="
    {\"name\": \"$name\", \"family\": \"dpc3\", \"class\": \"medium\",
     \"path\": \"$name.pmpt\", \"sha256\": \"$sum\", \"records\": $records}"
done

manifest="$outdir/traces.json"
cat >"$manifest" <<EOF
{
  "version": 1,
  "traces": [$entries
  ]
}
EOF
rm -f "$outdir/.pmptrace"

echo "== manifest =="
echo "wrote $manifest ($(grep -c '"name"' "$manifest") traces)"
echo "run the external-workload table with:"
echo "  go run ./cmd/pmpexperiments -exp EXTW -manifest $manifest"
