#!/usr/bin/env bash
# Trace-file round-trip smoke test for the lazy (mmap/windowed) reader.
#
# Generates a trace with pmptrace, then
#   1. `pmptrace info -verify` streams it through the lazy FileSource
#      and the buffered Read decoder and compares every record (the
#      two share no I/O machinery, so agreement certifies both), and
#   2. pmpsim consumes the same file via -file end to end, proving the
#      simulator's streaming path accepts what the writer produced.
# On Linux runners leg 1 exercises the mmap path; elsewhere it covers
# the windowed ReaderAt fallback — the smoke is platform-agnostic by
# design.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/pmptrace" ./cmd/pmptrace
go build -o "$tmp/pmpsim" ./cmd/pmpsim

echo "== generate =="
"$tmp/pmptrace" -gen spec06.mcf-26 -records 50000 -o "$tmp/smoke.pmpt"

echo "== info -verify (lazy vs buffered reader) =="
"$tmp/pmptrace" info -verify "$tmp/smoke.pmpt" | tee "$tmp/info.out"
grep -q "verify         OK" "$tmp/info.out" ||
  { echo "trace_smoke: verify line missing from info output" >&2; exit 1; }

echo "== pmpsim consumes the file =="
"$tmp/pmpsim" -pf pmp -file "$tmp/smoke.pmpt" -warmup 10000 >"$tmp/sim.out"
grep -q "prefetcher  pmp" "$tmp/sim.out" ||
  { echo "trace_smoke: pmpsim produced no result" >&2; cat "$tmp/sim.out" >&2; exit 1; }

echo "trace_smoke: OK"
