#!/usr/bin/env bash
# Distributed-sweep smoke test for pmpsweepd (docs/sweep.md,
# "Distributed mode").
#
# Proves the service's core invariant under worker death:
#   1. run pmpexperiments at quick scale serially -> baseline store,
#   2. start a coordinator (short lease TTL) and two workers,
#      run the same experiments through `pmpexperiments -remote`,
#      SIGKILL one worker mid-sweep,
#   3. assert the merged store's canonical dump (last record per ID,
#      sorted, timing zeroed) is byte-identical to the serial one,
#      and that the kill actually landed mid-run (a lease expired or
#      the dead worker had completed work to lose — never vacuous).
#
# On failure every log lands in $DISTRIBUTED_SMOKE_LOGDIR (default
# /tmp/distributed_smoke_logs) so CI can upload them as artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
logdir="${DISTRIBUTED_SMOKE_LOGDIR:-/tmp/distributed_smoke_logs}"
addr="${DISTRIBUTED_SMOKE_ADDR:-127.0.0.1:7077}"
lease_ttl="${DISTRIBUTED_SMOKE_LEASE_TTL:-3s}"
kill_after="${DISTRIBUTED_SMOKE_KILL_AFTER:-3}"
token="${DISTRIBUTED_SMOKE_TOKEN:-smoke-secret-$$}"

# All status polls carry the shared-secret bearer token the coordinator
# requires on every endpoint.
status_post() {
  curl -sf -X POST -H "Authorization: Bearer $token" -d '{}' "http://$addr/status"
}

pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  if [ "$status" -ne 0 ]; then
    mkdir -p "$logdir"
    cp "$tmp"/*.log "$tmp"/*.out "$tmp"/*.err "$logdir"/ 2>/dev/null || true
    cp "$tmp"/*.jsonl "$tmp"/*.canon "$logdir"/ 2>/dev/null || true
    echo "FAIL: logs copied to $logdir"
  fi
  rm -rf "$tmp"
  exit "$status"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/pmpexperiments" ./cmd/pmpexperiments
go build -o "$tmp/pmpsweepd" ./cmd/pmpsweepd

echo "== serial baseline =="
"$tmp/pmpexperiments" -scale quick -store "$tmp/serial.jsonl" \
  >"$tmp/serial.out" 2>"$tmp/serial.err"

echo "== coordinator + 2 workers (lease TTL $lease_ttl) =="
"$tmp/pmpsweepd" -listen "$addr" -store "$tmp/merged.jsonl" \
  -lease-ttl "$lease_ttl" -retries 10 -auth-token "$token" -v \
  >"$tmp/coord.log" 2>&1 &
coord_pid=$!
pids+=("$coord_pid")

# Wait for the coordinator to accept connections.
for _ in $(seq 1 50); do
  if status_post >/dev/null 2>&1; then break; fi
  sleep 0.1
done
status_post >/dev/null \
  || { echo "FAIL: coordinator never came up"; exit 1; }

echo "== assert: requests without the bearer token are rejected =="
unauth=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{}' "http://$addr/status")
if [ "$unauth" != "401" ]; then
  echo "FAIL: unauthenticated /status returned $unauth, want 401"
  exit 1
fi
echo "PASS: unauthenticated request rejected with 401"

"$tmp/pmpsweepd" -worker -connect "$addr" -name victim -auth-token "$token" -v \
  >"$tmp/worker1.log" 2>&1 &
victim_pid=$!
pids+=("$victim_pid")
"$tmp/pmpsweepd" -worker -connect "$addr" -name survivor -auth-token "$token" -v \
  >"$tmp/worker2.log" 2>&1 &
pids+=("$!")

echo "== distributed run (killing worker 'victim' after ${kill_after}s of progress) =="
"$tmp/pmpexperiments" -scale quick -remote "$addr" -auth-token "$token" \
  >"$tmp/remote.out" 2>"$tmp/remote.err" &
client_pid=$!
pids+=("$client_pid")

# Kill the victim while it provably holds a lease: freeze it with
# SIGSTOP, confirm the coordinator still shows leased jobs against it,
# then SIGKILL. If the victim finished its batch in the race window,
# thaw it and retry at its next batch — the kill is never vacuous.
victim_leased() {
  status_post 2>/dev/null \
    | grep -o '"name":"victim"[^}]*' | grep -o '"leased":[0-9]*' | cut -d: -f2
}
sleep "$kill_after"
killed=0
for attempt in $(seq 1 50); do
  if ! kill -0 "$client_pid" 2>/dev/null; then break; fi
  if [ "$(victim_leased || echo 0)" -gt 0 ] 2>/dev/null; then
    kill -STOP "$victim_pid" 2>/dev/null || break
    sleep 0.2 # let reports already on the wire land
    if [ "$(victim_leased || echo 0)" -gt 0 ] 2>/dev/null; then
      pre_kill=$(status_post)
      kill -KILL "$victim_pid" 2>/dev/null || true
      echo "killed victim (pid $victim_pid, attempt $attempt) holding a lease; status then: $pre_kill"
      killed=1
      break
    fi
    kill -CONT "$victim_pid" 2>/dev/null || break
  fi
  sleep 0.1
done
if [ "$killed" -ne 1 ]; then
  echo "FAIL: never caught the victim holding a lease; the worker-death leg is vacuous"
  exit 1
fi

status=0
wait "$client_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: remote pmpexperiments exited with status $status"
  exit 1
fi

echo "== assert: the death was observed and recovered =="
post=$(status_post)
echo "final status: $post"
expired=$(echo "$post" | grep -o '"expired":[0-9]*' | head -1 | cut -d: -f2)
quarantined=$(echo "$post" | grep -o '"quarantined":[0-9]*' | head -1 | cut -d: -f2)
if [ "${expired:-0}" -lt 1 ]; then
  echo "FAIL: no lease expired — the victim died holding nothing, so the" \
    "worker-death leg is vacuous. Lower DISTRIBUTED_SMOKE_KILL_AFTER."
  exit 1
fi
echo "victim's death expired $expired lease attempt(s); survivors recovered them"
if [ "${quarantined:-0}" -ne 0 ]; then
  echo "FAIL: $quarantined jobs quarantined; re-leasing should have recovered them"
  exit 1
fi

# Stop the coordinator cleanly so it writes the manifest.
kill -TERM "$coord_pid" 2>/dev/null || true
wait "$coord_pid" 2>/dev/null || true

echo "== assert: merged store matches the serial baseline =="
"$tmp/pmpsweepd" -canon "$tmp/serial.jsonl" >"$tmp/serial.canon"
"$tmp/pmpsweepd" -canon "$tmp/merged.jsonl" >"$tmp/merged.canon"
if ! cmp -s "$tmp/serial.canon" "$tmp/merged.canon"; then
  echo "FAIL: canonical stores differ (serial vs distributed):"
  diff "$tmp/serial.canon" "$tmp/merged.canon" | head -20
  exit 1
fi
echo "PASS: $(wc -l <"$tmp/merged.canon") records byte-identical to the serial baseline"

echo "== assert: manifest records the distributed topology =="
manifest="$tmp/merged.manifest.json"
if [ ! -f "$manifest" ]; then
  echo "FAIL: coordinator wrote no manifest at $manifest"
  exit 1
fi
grep -q '"coordinator"' "$manifest" || { echo "FAIL: manifest lacks coordinator address"; exit 1; }
grep -qE '"remote_workers": *2' "$manifest" || { echo "FAIL: manifest lacks remote_workers=2"; cat "$manifest"; exit 1; }
grep -q '"worker_jobs"' "$manifest" || { echo "FAIL: manifest lacks per-worker tallies"; exit 1; }
echo "PASS: manifest has coordinator, worker count, per-worker tallies"

echo "== assert: rendered tables match the serial run =="
strip() { grep -v -E '^-- .* completed in |^total elapsed: |^remote: ' "$1"; }
if ! diff <(strip "$tmp/serial.out") <(strip "$tmp/remote.out"); then
  echo "FAIL: remote run's tables differ from the serial baseline"
  exit 1
fi
echo "PASS: rendered tables byte-identical"

echo "== distributed smoke OK =="
