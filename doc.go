// Package pmp is a from-scratch Go reproduction of "Merging Similar
// Patterns for Hardware Prefetching" (Jiang, Yang, Ci — MICRO 2022):
// the Pattern Merging Prefetcher, the four state-of-the-art prefetchers
// it is evaluated against, a trace-driven timing simulator standing in
// for ChampSim, synthetic workload generators standing in for the
// paper's 125 SPEC/PARSEC/Ligra traces, the Section III pattern-analysis
// tooling, and a benchmark harness that regenerates every table and
// figure of the evaluation.
//
// Start with the README for a tour; DESIGN.md maps every subsystem and
// experiment; EXPERIMENTS.md records paper-vs-measured numbers. The
// benchmarks in bench_test.go regenerate the paper's artifacts:
//
//	go test -bench=BenchmarkFig8 -benchtime=1x
//
// The public surface for embedding lives under internal/ by design —
// this repository is a research artifact; the runnable surface is the
// commands (cmd/pmpsim, cmd/pmptrace, cmd/pmpanalyze, cmd/pmpexperiments)
// and the examples.
package pmp
